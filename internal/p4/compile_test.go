package p4

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"stat4/internal/packet"
)

// buildKitchenSink is a program that exercises every lowering shape: nested
// ifs with and without else branches, table applies with and without default
// actions, direct calls, a ternary table, and most opcodes including hash,
// saturating arithmetic and digests.
func buildKitchenSink() (*Program, StdFields) {
	p := NewProgram("kitchen-sink")
	std := DeclareStdFields(p)
	idx := p.AddField("meta.idx", 16)
	tmp := p.AddField("meta.tmp", 64)
	acc := p.AddField("meta.acc", 32)
	narrow := p.AddField("meta.narrow", 8)

	p.AddRegister("cells", 32, 48)
	p.AddRegister("scratch", 4, 64)

	p.AddAction(NewAction("count_at", 2,
		Mov(idx, P(0)),
		RegRead(tmp, "cells", F(idx)),
		SatAdd(tmp, F(tmp), P(1)),
		RegWrite("cells", F(idx), F(tmp)),
	))
	p.AddAction(NewAction("mix", 0,
		Hash(idx, 1, F(std.IPv4Src), 31),
		RegRead(tmp, "cells", F(idx)),
		Xor(acc, F(tmp), F(std.IPv4Dst)),
		Not(narrow, F(acc)),
		Shl(acc, F(acc), C(3)),
		Shr(acc, F(acc), C(1)),
		SatSub(tmp, F(tmp), C(7)),
		RegWrite("scratch", C(1), F(acc)),
	))
	p.AddAction(NewAction("alert", 0,
		EmitDigest(5, std.IPv4Dst, std.InPort),
	))
	p.AddAction(NewAction("widen", 0,
		Sub(acc, F(std.WireLen), C(9)),
		And(tmp, F(acc), C(0xff)),
		Or(tmp, F(tmp), C(0x100)),
		Add(tmp, F(tmp), F(std.TsNs)),
	))
	p.AddAction(NewAction("noop", 0))
	p.AddAction(NewAction("reflect", 0, SetEgress(F(std.InPort))))
	p.AddAction(NewAction("deny", 0, Drop()))

	p.AddTable(&TableDef{
		Name:          "bind",
		Keys:          []KeySpec{{Field: std.IPv4Dst, Kind: MatchLPM}},
		ActionNames:   []string{"count_at", "noop"},
		DefaultAction: "noop",
		MaxEntries:    16,
	})
	p.AddTable(&TableDef{
		Name: "classify",
		Keys: []KeySpec{
			{Field: std.EthType, Kind: MatchTernary},
			{Field: std.TCPSyn, Kind: MatchTernary},
		},
		ActionNames: []string{"alert", "deny", "noop"},
		MaxEntries:  16, // no default: a miss must fall through untouched
	})
	p.Control = []Stmt{
		If(Cond{A: F(std.IPv4Valid), Op: CmpEq, B: C(1)},
			Apply("bind"),
			If(Cond{A: F(std.WireLen), Op: CmpGt, B: C(60)},
				Call("widen"),
			).WithElse(
				Call("mix"),
			),
		).WithElse(
			Apply("classify"),
		),
		If(Cond{A: F(std.Drop), Op: CmpEq, B: C(0)},
			Call("reflect"),
		),
	}
	return p, std
}

func installKitchenSinkEntries(t *testing.T, sw *Switch) {
	t.Helper()
	inserts := []struct {
		tbl    string
		match  []MatchValue
		prio   int
		action string
		args   []uint64
	}{
		{"bind", []MatchValue{{Value: uint64(packet.ParseIP4(10, 0, 5, 0)), PrefixLen: 24}}, 0, "count_at", []uint64{3, 2}},
		{"bind", []MatchValue{{Value: uint64(packet.ParseIP4(10, 0, 0, 0)), PrefixLen: 8}}, 0, "count_at", []uint64{9, 1}},
		{"classify", []MatchValue{{Value: 0x0806, Mask: 0xffff}, {}}, 5, "alert", nil},
		{"classify", []MatchValue{{Value: 0x0806, Mask: 0xff00}, {}}, 1, "deny", nil},
	}
	for _, in := range inserts {
		if _, err := sw.InsertEntry(in.tbl, in.match, in.prio, in.action, in.args); err != nil {
			t.Fatal(err)
		}
	}
}

// differentialFrames is a deterministic mixed stream: routed IPv4 (hit and
// miss, long and short), TCP SYNs, ARP-ish non-IPv4 frames that hit the
// ternary table (including the deny entry), and garbage.
func differentialFrames(n int, seed int64) [][]byte {
	rng := rand.New(rand.NewSource(seed))
	frames := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		switch rng.Intn(6) {
		case 0:
			dst := packet.ParseIP4(10, 0, 5, byte(rng.Intn(256)))
			frames = append(frames, packet.NewUDPFrame(packet.ParseIP4(192, 0, 2, 1), dst, 1000, 80, rng.Intn(64)).Serialize())
		case 1:
			dst := packet.ParseIP4(10, byte(rng.Intn(256)), 0, 1)
			frames = append(frames, packet.NewUDPFrame(packet.ParseIP4(192, 0, 2, 2), dst, 1000, 80, 2).Serialize())
		case 2:
			frames = append(frames, packet.NewTCPFrame(packet.ParseIP4(172, 16, 0, 1), packet.ParseIP4(172, 16, 0, 2), 1234, 80, packet.FlagSYN).Serialize())
		case 3:
			pkt := &packet.Packet{Eth: packet.Ethernet{Type: 0x0806}, Payload: []byte{byte(i)}}
			frames = append(frames, pkt.Serialize())
		case 4:
			pkt := &packet.Packet{Eth: packet.Ethernet{Type: 0x08ff}, Payload: []byte{1, 2}}
			frames = append(frames, pkt.Serialize())
		default:
			frames = append(frames, []byte{byte(i), 2, 3})
		}
	}
	return frames
}

// TestCompiledPlanMatchesTreeWalker replays one frame stream through the
// compiled plan and the tree-walking reference and demands byte-identical
// outputs, identical digests, identical stats and identical register state.
func TestCompiledPlanMatchesTreeWalker(t *testing.T) {
	prog, std := buildKitchenSink()
	compiled := mustSwitch(t, prog, std)
	prog2, std2 := buildKitchenSink()
	tree := mustSwitch(t, prog2, std2)
	tree.SetExecMode(ExecTree)
	installKitchenSinkEntries(t, compiled)
	installKitchenSinkEntries(t, tree)

	for i, frame := range differentialFrames(4000, 7) {
		port := uint16(i % 5)
		outC := compiled.ProcessFrame(uint64(i)*100, port, frame)
		// Compare before the next frame reuses the scratch buffers; copy
		// the compiled output because the tree switch's ProcessFrame runs
		// between producing and comparing.
		var savedPort uint16
		var savedData []byte
		if len(outC) > 0 {
			savedPort = outC[0].Port
			savedData = append(savedData, outC[0].Data...)
		}
		outT := tree.ProcessFrame(uint64(i)*100, port, frame)
		if len(outC) != len(outT) {
			t.Fatalf("frame %d: compiled emitted %d frames, tree %d", i, len(outC), len(outT))
		}
		if len(outT) > 0 {
			if savedPort != outT[0].Port {
				t.Fatalf("frame %d: compiled port %d, tree port %d", i, savedPort, outT[0].Port)
			}
			if !bytes.Equal(savedData, outT[0].Data) {
				t.Fatalf("frame %d: output bytes differ\ncompiled %x\ntree     %x", i, savedData, outT[0].Data)
			}
		}

		dc, dt := drainDigests(compiled), drainDigests(tree)
		if !reflect.DeepEqual(dc, dt) {
			t.Fatalf("frame %d: digests differ: compiled %v, tree %v", i, dc, dt)
		}
	}

	if sc, st := compiled.Stats(), tree.Stats(); sc != st {
		t.Fatalf("stats differ: compiled %+v, tree %+v", sc, st)
	}
	snapC, snapT := compiled.Snapshot(), tree.Snapshot()
	if !reflect.DeepEqual(snapC.Registers, snapT.Registers) {
		t.Fatalf("register state differs: compiled %v, tree %v", snapC.Registers, snapT.Registers)
	}
}

func drainDigests(sw *Switch) []Digest {
	var out []Digest
	for {
		select {
		case d := <-sw.Digests():
			out = append(out, d)
		default:
			return out
		}
	}
}

// TestModifyRebindsCompiledAction checks the rule-install-time resolution:
// after ModifyEntry the compiled path must run the new action.
func TestModifyRebindsCompiledAction(t *testing.T) {
	prog, std := buildCounterProgram()
	sw := mustSwitch(t, prog, std)
	id, err := sw.InsertEntry("bind",
		[]MatchValue{{Value: uint64(packet.ParseIP4(10, 0, 5, 0)), PrefixLen: 24}},
		0, "count_at", []uint64{3})
	if err != nil {
		t.Fatal(err)
	}
	sw.ProcessFrame(0, 1, udpTo(packet.ParseIP4(10, 0, 5, 1)))
	if err := sw.ModifyEntry("bind", id, "count_at", []uint64{7}); err != nil {
		t.Fatal(err)
	}
	sw.ProcessFrame(1, 1, udpTo(packet.ParseIP4(10, 0, 5, 1)))
	if err := sw.ModifyEntry("bind", id, "noop", nil); err != nil {
		t.Fatal(err)
	}
	sw.ProcessFrame(2, 1, udpTo(packet.ParseIP4(10, 0, 5, 1)))

	reg, err := sw.Register("counters")
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := reg.Read(3); v != 1 {
		t.Fatalf("cell 3 = %d, want 1", v)
	}
	if v, _ := reg.Read(7); v != 1 {
		t.Fatalf("cell 7 = %d, want 1 (modify must rebind the compiled action)", v)
	}
}

// TestRestoreRebindsCompiledActions checks that a snapshot restored into a
// different switch instance runs against that instance's registers.
func TestRestoreRebindsCompiledActions(t *testing.T) {
	prog, std := buildCounterProgram()
	src := mustSwitch(t, prog, std)
	if _, err := src.InsertEntry("bind",
		[]MatchValue{{Value: uint64(packet.ParseIP4(10, 0, 5, 0)), PrefixLen: 24}},
		0, "count_at", []uint64{4}); err != nil {
		t.Fatal(err)
	}

	prog2, std2 := buildCounterProgram()
	dst := mustSwitch(t, prog2, std2)
	if err := dst.Restore(src.Snapshot()); err != nil {
		t.Fatal(err)
	}
	dst.ProcessFrame(0, 1, udpTo(packet.ParseIP4(10, 0, 5, 1)))

	reg, err := dst.Register("counters")
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := reg.Read(4); v != 1 {
		t.Fatalf("restored entry did not count on the destination switch: cell 4 = %d", v)
	}
	srcReg, err := src.Register("counters")
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := srcReg.Read(4); v != 0 {
		t.Fatalf("restored entry wrote the source switch's register: cell 4 = %d", v)
	}
}

// TestLowerStmtsTargets pins the lowering shape: forward-only targets,
// branch-to-else, jump-over-else.
func TestLowerStmtsTargets(t *testing.T) {
	prog, std := buildKitchenSink()
	sw := mustSwitch(t, prog, std)
	code := sw.plan.code
	if len(code) == 0 {
		t.Fatal("empty plan")
	}
	for pc, in := range code {
		switch in.kind {
		case instBranch, instJump:
			if in.target <= pc {
				t.Fatalf("inst %d: backward or self target %d", pc, in.target)
			}
			if in.target > len(code) {
				t.Fatalf("inst %d: target %d beyond plan end %d", pc, in.target, len(code))
			}
		case instApply:
			if in.tbl == nil {
				t.Fatalf("inst %d: apply without table", pc)
			}
			if in.tbl.def.DefaultAction != "" && in.act == nil {
				t.Fatalf("inst %d: default action not resolved", pc)
			}
		case instCall:
			if in.act == nil {
				t.Fatalf("inst %d: call without resolved action", pc)
			}
		}
	}
	_ = std
}

// TestProcessBatch drives the batch entry point and checks it observes every
// output while reusing the switch's buffers.
func TestProcessBatch(t *testing.T) {
	prog, std := buildCounterProgram()
	sw := mustSwitch(t, prog, std)
	batch := []FrameIn{
		{TsNs: 0, Port: 2, Data: udpTo(packet.ParseIP4(10, 0, 0, 1))},
		{TsNs: 1, Port: 3, Data: []byte{1, 2, 3}}, // parse error: dropped
		{TsNs: 2, Port: 4, Data: udpTo(packet.ParseIP4(10, 0, 0, 2))},
	}
	var ports []uint16
	sw.ProcessBatch(batch, func(out FrameOut) {
		ports = append(ports, out.Port)
		if _, err := packet.Parse(out.Data); err != nil {
			t.Fatalf("batch output unparseable: %v", err)
		}
	})
	if !reflect.DeepEqual(ports, []uint16{2, 4}) {
		t.Fatalf("batch output ports = %v, want [2 4]", ports)
	}
	st := sw.Stats()
	if st.PktsIn != 3 || st.PktsOut != 2 || st.Dropped != 1 || st.ParseErrors != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// nil emit processes for side effects only.
	sw.ProcessBatch(batch[:1], nil)
	if got := sw.Stats().PktsOut; got != 3 {
		t.Fatalf("PktsOut = %d after nil-emit batch, want 3", got)
	}
}
