package p4

import (
	"testing"

	"stat4/internal/packet"
)

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	p, std := buildCounterProgram()
	sw := mustSwitch(t, p, std)
	id, err := sw.InsertEntry("bind",
		[]MatchValue{{Value: uint64(packet.ParseIP4(10, 0, 0, 0)), PrefixLen: 8}},
		0, "count_at", []uint64{4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		sw.ProcessFrame(uint64(i), 1, udpTo(packet.ParseIP4(10, 1, 1, 1)))
	}
	snap := sw.Snapshot()

	// Diverge: more traffic, entry retargeted.
	for i := 0; i < 5; i++ {
		sw.ProcessFrame(uint64(10+i), 1, udpTo(packet.ParseIP4(10, 1, 1, 1)))
	}
	if err := sw.ModifyEntry("bind", id, "count_at", []uint64{9}); err != nil {
		t.Fatal(err)
	}
	reg, _ := sw.Register("counters")
	if v, _ := reg.Read(4); v != 12 {
		t.Fatalf("pre-restore counter = %d", v)
	}

	// Rewind.
	if err := sw.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if v, _ := reg.Read(4); v != 7 {
		t.Fatalf("restored counter = %d, want 7", v)
	}
	entries, err := sw.TableEntries("bind")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Args[0] != 4 || entries[0].ID != id {
		t.Fatalf("restored entries = %+v", entries)
	}
	// The restored state keeps evolving correctly.
	sw.ProcessFrame(100, 1, udpTo(packet.ParseIP4(10, 1, 1, 1)))
	if v, _ := reg.Read(4); v != 8 {
		t.Fatalf("post-restore counter = %d, want 8", v)
	}
	// New entries don't collide with preserved IDs.
	id2, err := sw.InsertEntry("bind",
		[]MatchValue{{Value: uint64(packet.ParseIP4(11, 0, 0, 0)), PrefixLen: 8}},
		0, "noop", nil)
	if err != nil {
		t.Fatal(err)
	}
	if id2 == id {
		t.Fatal("entry ID reused after restore")
	}
}

func TestSnapshotIsDeepCopy(t *testing.T) {
	p, std := buildCounterProgram()
	sw := mustSwitch(t, p, std)
	if _, err := sw.InsertEntry("bind",
		[]MatchValue{{Value: 0, PrefixLen: 1}}, 0, "count_at", []uint64{2}); err != nil {
		t.Fatal(err)
	}
	snap := sw.Snapshot()
	// Mutating the snapshot must not touch the live switch.
	snap.Registers["counters"][2] = 999
	snap.Entries["bind"][0].Args[0] = 63
	reg, _ := sw.Register("counters")
	if v, _ := reg.Read(2); v == 999 {
		t.Fatal("snapshot aliases live registers")
	}
	entries, _ := sw.TableEntries("bind")
	if entries[0].Args[0] == 63 {
		t.Fatal("snapshot aliases live entries")
	}
}

func TestRestoreRejectsMismatchedShapes(t *testing.T) {
	p, std := buildCounterProgram()
	sw := mustSwitch(t, p, std)
	if err := sw.Restore(&Snapshot{Registers: map[string][]uint64{"ghost": {1}}}); err == nil {
		t.Fatal("unknown register accepted")
	}
	if err := sw.Restore(&Snapshot{Registers: map[string][]uint64{"counters": {1, 2}}}); err == nil {
		t.Fatal("wrong cell count accepted")
	}
	if err := sw.Restore(&Snapshot{Entries: map[string][]Entry{"ghost": {}}}); err == nil {
		t.Fatal("unknown table accepted")
	}
	bad := Entry{ID: 1, Match: []MatchValue{{PrefixLen: 8}}, Action: "ghost"}
	if err := sw.Restore(&Snapshot{Entries: map[string][]Entry{"bind": {bad}}}); err == nil {
		t.Fatal("invalid entry accepted")
	}
	// A failed restore must leave state untouched.
	reg, _ := sw.Register("counters")
	if v, _ := reg.Read(0); v != 0 {
		t.Fatal("failed restore mutated state")
	}
}

func TestTableEntriesUnknownTable(t *testing.T) {
	p, std := buildCounterProgram()
	sw := mustSwitch(t, p, std)
	if _, err := sw.TableEntries("ghost"); err == nil {
		t.Fatal("unknown table accepted")
	}
}
