package p4

import (
	"errors"
	"strings"
	"testing"

	"stat4/internal/packet"
)

// buildCounterProgram is a small program used across tests: it counts IPv4
// packets per /24 via an LPM binding table and mirrors frames back out.
func buildCounterProgram() (*Program, StdFields) {
	p := NewProgram("test-counter")
	std := DeclareStdFields(p)
	idx := p.AddField("meta.idx", 32)
	tmp := p.AddField("meta.tmp", 64)

	p.AddRegister("counters", 64, 64)

	p.AddAction(NewAction("count_at", 1,
		Mov(idx, P(0)),
		RegRead(tmp, "counters", F(idx)),
		Add(tmp, F(tmp), C(1)),
		RegWrite("counters", F(idx), F(tmp)),
	))
	p.AddAction(NewAction("noop", 0))
	p.AddAction(NewAction("reflect", 0, SetEgress(F(std.InPort))))

	p.AddTable(&TableDef{
		Name:          "bind",
		Keys:          []KeySpec{{Field: std.IPv4Dst, Kind: MatchLPM}},
		ActionNames:   []string{"count_at", "noop"},
		DefaultAction: "noop",
		MaxEntries:    32,
	})
	p.Control = []Stmt{
		If(Cond{A: F(std.IPv4Valid), Op: CmpEq, B: C(1)},
			Apply("bind"),
		),
		Call("reflect"),
	}
	return p, std
}

func mustSwitch(t *testing.T, p *Program, std StdFields) *Switch {
	t.Helper()
	sw, err := NewSwitch(p, std, 0)
	if err != nil {
		t.Fatal(err)
	}
	return sw
}

func udpTo(dst packet.IP4) []byte {
	return packet.NewUDPFrame(packet.ParseIP4(192, 0, 2, 1), dst, 1000, 80, 10).Serialize()
}

func TestSwitchCountsViaLPM(t *testing.T) {
	p, std := buildCounterProgram()
	sw := mustSwitch(t, p, std)

	// Bind 10.0.5.0/24 -> cell 3, 10.0.0.0/8 -> cell 9 (less specific).
	if _, err := sw.InsertEntry("bind",
		[]MatchValue{{Value: uint64(packet.ParseIP4(10, 0, 5, 0)), PrefixLen: 24}},
		0, "count_at", []uint64{3}); err != nil {
		t.Fatal(err)
	}
	if _, err := sw.InsertEntry("bind",
		[]MatchValue{{Value: uint64(packet.ParseIP4(10, 0, 0, 0)), PrefixLen: 8}},
		0, "count_at", []uint64{9}); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 5; i++ {
		sw.ProcessFrame(uint64(i), 1, udpTo(packet.ParseIP4(10, 0, 5, 6)))
	}
	for i := 0; i < 2; i++ {
		sw.ProcessFrame(uint64(i), 1, udpTo(packet.ParseIP4(10, 9, 9, 9)))
	}
	sw.ProcessFrame(99, 1, udpTo(packet.ParseIP4(172, 16, 0, 1))) // miss → noop

	reg, err := sw.Register("counters")
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := reg.Read(3); v != 5 {
		t.Fatalf("cell 3 = %d, want 5 (longest prefix must win)", v)
	}
	if v, _ := reg.Read(9); v != 2 {
		t.Fatalf("cell 9 = %d, want 2", v)
	}
	st := sw.Stats()
	if st.PktsIn != 8 || st.PktsOut != 8 || st.Dropped != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSwitchReflectsToIngressPort(t *testing.T) {
	p, std := buildCounterProgram()
	sw := mustSwitch(t, p, std)
	out := sw.ProcessFrame(0, 7, udpTo(packet.ParseIP4(10, 0, 0, 1)))
	if len(out) != 1 || out[0].Port != 7 {
		t.Fatalf("out = %+v, want reflection to port 7", out)
	}
	// Default deparser forwards the frame unchanged.
	if _, err := packet.Parse(out[0].Data); err != nil {
		t.Fatalf("forwarded frame unparseable: %v", err)
	}
}

func TestSwitchDropsGarbage(t *testing.T) {
	p, std := buildCounterProgram()
	sw := mustSwitch(t, p, std)
	if out := sw.ProcessFrame(0, 1, []byte{1, 2, 3}); out != nil {
		t.Fatal("garbage frame forwarded")
	}
	st := sw.Stats()
	if st.ParseErrors != 1 || st.Dropped != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDropAction(t *testing.T) {
	p := NewProgram("dropper")
	std := DeclareStdFields(p)
	p.AddAction(NewAction("deny", 0, Drop()))
	p.Control = []Stmt{Call("deny")}
	sw := mustSwitch(t, p, std)
	if out := sw.ProcessFrame(0, 1, udpTo(1)); out != nil {
		t.Fatal("dropped packet was emitted")
	}
	if sw.Stats().Dropped != 1 {
		t.Fatal("drop not counted")
	}
}

func TestTernaryPriority(t *testing.T) {
	p := NewProgram("ternary")
	std := DeclareStdFields(p)
	mark := p.AddField("meta.mark", 8)
	p.AddAction(NewAction("set_mark", 1, Mov(mark, P(0))))
	p.AddAction(NewAction("noop", 0))
	p.AddTable(&TableDef{
		Name:          "classify",
		Keys:          []KeySpec{{Field: std.TCPDport, Kind: MatchTernary}},
		ActionNames:   []string{"set_mark"},
		DefaultAction: "noop",
		MaxEntries:    8,
	})
	p.Control = []Stmt{Apply("classify"), Call("noop")}
	sw := mustSwitch(t, p, std)

	// Low-priority catch-all vs high-priority exact 443.
	if _, err := sw.InsertEntry("classify",
		[]MatchValue{{Value: 0, Mask: 0}}, 1, "set_mark", []uint64{1}); err != nil {
		t.Fatal(err)
	}
	if _, err := sw.InsertEntry("classify",
		[]MatchValue{{Value: 443, Mask: 0xffff}}, 10, "set_mark", []uint64{2}); err != nil {
		t.Fatal(err)
	}

	frame443 := packet.NewTCPFrame(1, 2, 99, 443, packet.FlagSYN).Serialize()
	frame80 := packet.NewTCPFrame(1, 2, 99, 80, packet.FlagSYN).Serialize()

	var got uint64
	p4probe := func(b []byte) uint64 {
		pkt, _ := packet.Parse(b)
		ctx := &Ctx{fields: make([]uint64, len(p.Fields)), sw: sw}
		std.extract(ctx, 0, 0, pkt)
		sw.execStmts(ctx, p.Control)
		return ctx.Get(mark)
	}
	if got = p4probe(frame443); got != 2 {
		t.Fatalf("mark for :443 = %d, want 2 (priority)", got)
	}
	if got = p4probe(frame80); got != 1 {
		t.Fatalf("mark for :80 = %d, want 1 (catch-all)", got)
	}
}

func TestRuntimeEntryLifecycle(t *testing.T) {
	p, std := buildCounterProgram()
	sw := mustSwitch(t, p, std)
	id, err := sw.InsertEntry("bind",
		[]MatchValue{{Value: uint64(packet.ParseIP4(10, 0, 1, 0)), PrefixLen: 24}},
		0, "count_at", []uint64{1})
	if err != nil {
		t.Fatal(err)
	}
	sw.ProcessFrame(0, 1, udpTo(packet.ParseIP4(10, 0, 1, 5)))

	// Drill-down style modification: same match, new argument.
	if err := sw.ModifyEntry("bind", id, "count_at", []uint64{2}); err != nil {
		t.Fatal(err)
	}
	sw.ProcessFrame(1, 1, udpTo(packet.ParseIP4(10, 0, 1, 5)))

	reg, _ := sw.Register("counters")
	if v, _ := reg.Read(1); v != 1 {
		t.Fatalf("cell 1 = %d", v)
	}
	if v, _ := reg.Read(2); v != 1 {
		t.Fatalf("cell 2 = %d", v)
	}

	if err := sw.DeleteEntry("bind", id); err != nil {
		t.Fatal(err)
	}
	sw.ProcessFrame(2, 1, udpTo(packet.ParseIP4(10, 0, 1, 5)))
	if v, _ := reg.Read(2); v != 1 {
		t.Fatal("deleted entry still counting")
	}
	if err := sw.DeleteEntry("bind", id); !errors.Is(err, ErrNoSuchEntry) {
		t.Fatalf("double delete err = %v", err)
	}
	if n, _ := sw.EntryCount("bind"); n != 0 {
		t.Fatalf("EntryCount = %d", n)
	}
}

func TestEntryValidation(t *testing.T) {
	p, std := buildCounterProgram()
	sw := mustSwitch(t, p, std)
	if _, err := sw.InsertEntry("bind", nil, 0, "count_at", []uint64{1}); !errors.Is(err, ErrBadEntry) {
		t.Fatalf("missing match accepted: %v", err)
	}
	if _, err := sw.InsertEntry("bind",
		[]MatchValue{{Value: 0, PrefixLen: 40}}, 0, "count_at", []uint64{1}); !errors.Is(err, ErrBadEntry) {
		t.Fatalf("bad prefix accepted: %v", err)
	}
	if _, err := sw.InsertEntry("bind",
		[]MatchValue{{Value: 0, PrefixLen: 8}}, 0, "reflect", nil); !errors.Is(err, ErrNoSuchAction) {
		t.Fatalf("unbindable action accepted: %v", err)
	}
	if _, err := sw.InsertEntry("bind",
		[]MatchValue{{Value: 0, PrefixLen: 8}}, 0, "count_at", nil); !errors.Is(err, ErrBadEntry) {
		t.Fatalf("wrong arity accepted: %v", err)
	}
	if _, err := sw.InsertEntry("nope", nil, 0, "x", nil); !errors.Is(err, ErrNoSuchTable) {
		t.Fatalf("unknown table: %v", err)
	}
}

func TestTableFull(t *testing.T) {
	p, std := buildCounterProgram()
	for _, tb := range p.Tables {
		tb.MaxEntries = 1
	}
	sw := mustSwitch(t, p, std)
	m := []MatchValue{{Value: 0, PrefixLen: 8}}
	if _, err := sw.InsertEntry("bind", m, 0, "noop", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := sw.InsertEntry("bind", m, 0, "noop", nil); !errors.Is(err, ErrTableFull) {
		t.Fatalf("overfull insert err = %v", err)
	}
}

func TestRegisterBoundsFaultInjection(t *testing.T) {
	p, std := buildCounterProgram()
	sw := mustSwitch(t, p, std)
	// Bind an out-of-bounds cell: the data plane must survive, count an
	// error, and leave state untouched.
	if _, err := sw.InsertEntry("bind",
		[]MatchValue{{Value: 0, PrefixLen: 1}}, 0, "count_at", []uint64{9999}); err != nil {
		t.Fatal(err)
	}
	out := sw.ProcessFrame(0, 1, udpTo(packet.ParseIP4(1, 2, 3, 4)))
	if len(out) != 1 {
		t.Fatal("packet with faulting action not forwarded")
	}
	st := sw.Stats()
	if st.RuntimeErrors == 0 {
		t.Fatal("out-of-bounds register access not counted")
	}
}

func TestDigestDelivery(t *testing.T) {
	p := NewProgram("alerter")
	std := DeclareStdFields(p)
	p.AddAction(NewAction("alert", 0, EmitDigest(7, std.IPv4Dst, std.WireLen)))
	p.Control = []Stmt{Call("alert")}
	sw := mustSwitch(t, p, std)
	frame := udpTo(packet.ParseIP4(10, 0, 5, 6))
	sw.ProcessFrame(0, 1, frame)
	select {
	case d := <-sw.Digests():
		if d.ID != 7 || len(d.Values) != 2 {
			t.Fatalf("digest = %+v", d)
		}
		if d.Values[0] != uint64(packet.ParseIP4(10, 0, 5, 6)) {
			t.Fatalf("digest dst = %v", packet.IP4(d.Values[0]))
		}
		if d.Values[1] != uint64(len(frame)) {
			t.Fatalf("digest len = %d, want %d", d.Values[1], len(frame))
		}
	default:
		t.Fatal("no digest delivered")
	}
}

func TestDigestOverflowDrops(t *testing.T) {
	p := NewProgram("alerter")
	std := DeclareStdFields(p)
	p.AddAction(NewAction("alert", 0, EmitDigest(1, std.WireLen)))
	p.Control = []Stmt{Call("alert")}
	sw, err := NewSwitch(p, std, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		sw.ProcessFrame(uint64(i), 1, udpTo(1))
	}
	if got := sw.Stats().DigestDrops; got != 3 {
		t.Fatalf("DigestDrops = %d, want 3", got)
	}
}

func TestValidateRejectsPacketDependentShift(t *testing.T) {
	p := NewProgram("bad-shift")
	std := DeclareStdFields(p)
	x := p.AddField("meta.x", 32)
	p.AddAction(NewAction("bad", 0, Shl(x, F(x), F(std.WireLen))))
	p.Control = []Stmt{Call("bad")}
	if err := p.Validate(); !errors.Is(err, ErrInvalidProgram) {
		t.Fatalf("packet-dependent shift accepted: %v", err)
	}
}

func TestValidateRejectsBrokenPrograms(t *testing.T) {
	build := func(f func(p *Program, std StdFields)) error {
		p := NewProgram("bad")
		std := DeclareStdFields(p)
		f(p, std)
		return p.Validate()
	}
	cases := map[string]func(p *Program, std StdFields){
		"undeclared table": func(p *Program, std StdFields) {
			p.Control = []Stmt{Apply("ghost")}
		},
		"undeclared action": func(p *Program, std StdFields) {
			p.Control = []Stmt{Call("ghost")}
		},
		"arity mismatch": func(p *Program, std StdFields) {
			p.AddAction(NewAction("a", 2))
			p.Control = []Stmt{Call("a", 1)}
		},
		"undeclared register": func(p *Program, std StdFields) {
			x := p.AddField("x", 8)
			p.AddAction(NewAction("a", 0, RegRead(x, "ghost", C(0))))
			p.Control = []Stmt{Call("a")}
		},
		"param out of range": func(p *Program, std StdFields) {
			x := p.AddField("x", 8)
			p.AddAction(NewAction("a", 1, Mov(x, P(1))))
			p.Control = []Stmt{Call("a", 0)}
		},
		"multi-key lpm": func(p *Program, std StdFields) {
			p.AddAction(NewAction("a", 0))
			p.AddTable(&TableDef{
				Name: "t",
				Keys: []KeySpec{
					{Field: std.IPv4Src, Kind: MatchLPM},
					{Field: std.IPv4Dst, Kind: MatchExact},
				},
				ActionNames: []string{"a"}, MaxEntries: 1,
			})
			p.Control = []Stmt{Apply("t")}
		},
		"table action undeclared": func(p *Program, std StdFields) {
			p.AddTable(&TableDef{
				Name:        "t",
				Keys:        []KeySpec{{Field: std.IPv4Src, Kind: MatchExact}},
				ActionNames: []string{"ghost"}, MaxEntries: 1,
			})
			p.Control = []Stmt{Apply("t")}
		},
		"duplicate register": func(p *Program, std StdFields) {
			p.AddRegister("r", 1, 8)
			p.AddRegister("r", 1, 8)
		},
		"non-field destination": func(p *Program, std StdFields) {
			p.AddAction(&Action{Name: "a", Ops: []Op{{Code: OpAdd, Dst: C(1), A: C(1), B: C(1)}}})
			p.Control = []Stmt{Call("a")}
		},
	}
	for name, f := range cases {
		if err := build(f); !errors.Is(err, ErrInvalidProgram) {
			t.Errorf("%s: err = %v, want ErrInvalidProgram", name, err)
		}
	}
}

func TestValidateAcceptsCounterProgram(t *testing.T) {
	p, _ := buildCounterProgram()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestArithmeticSemantics(t *testing.T) {
	p := NewProgram("arith")
	std := DeclareStdFields(p)
	a := p.AddField("a", 8)
	b := p.AddField("b", 8)
	p.AddAction(NewAction("go", 0,
		Mov(a, C(250)),
		Add(a, F(a), C(10)), // wraps at 8 bits: 260 & 255 = 4
		Mov(b, C(250)),
		SatAdd(b, F(b), C(10)), // saturates: 255
	))
	p.Control = []Stmt{Call("go")}
	sw := mustSwitch(t, p, std)
	pkt, _ := packet.Parse(udpTo(1))
	ctx := &Ctx{fields: make([]uint64, len(p.Fields)), sw: sw}
	std.extract(ctx, 0, 0, pkt)
	sw.execStmts(ctx, p.Control)
	if ctx.Get(a) != 4 {
		t.Fatalf("wrapping add = %d, want 4", ctx.Get(a))
	}
	if ctx.Get(b) != 255 {
		t.Fatalf("saturating add = %d, want 255", ctx.Get(b))
	}
}

func TestSatSubAndShifts(t *testing.T) {
	p := NewProgram("arith2")
	std := DeclareStdFields(p)
	a := p.AddField("a", 16)
	p.AddAction(NewAction("go", 0,
		Mov(a, C(5)),
		SatSub(a, F(a), C(9)), // 0
		Add(a, F(a), C(6)),
		Shl(a, F(a), C(2)), // 24
		Shr(a, F(a), C(3)), // 3
		Xor(a, F(a), C(1)), // 2
		Or(a, F(a), C(8)),  // 10
		And(a, F(a), C(6)), // 2
	))
	p.Control = []Stmt{Call("go")}
	sw := mustSwitch(t, p, std)
	pkt, _ := packet.Parse(udpTo(1))
	ctx := &Ctx{fields: make([]uint64, len(p.Fields)), sw: sw}
	std.extract(ctx, 0, 0, pkt)
	sw.execStmts(ctx, p.Control)
	if ctx.Get(a) != 2 {
		t.Fatalf("op chain = %d, want 2", ctx.Get(a))
	}
}

func TestParserExtraction(t *testing.T) {
	p := NewProgram("parse")
	std := DeclareStdFields(p)
	p.AddAction(NewAction("noop", 0))
	p.Control = []Stmt{Call("noop")}
	sw := mustSwitch(t, p, std)

	syn := packet.NewTCPFrame(packet.ParseIP4(1, 1, 1, 1), packet.ParseIP4(2, 2, 2, 2), 5, 80, packet.FlagSYN)
	pkt, _ := packet.Parse(syn.Serialize())
	ctx := &Ctx{fields: make([]uint64, len(p.Fields)), sw: sw}
	std.extract(ctx, 123456, 4, pkt)
	if ctx.Get(std.TsNs) != 123456 || ctx.Get(std.InPort) != 4 {
		t.Fatal("intrinsics wrong")
	}
	if ctx.Get(std.IPv4Valid) != 1 || ctx.Get(std.TCPValid) != 1 || ctx.Get(std.UDPValid) != 0 {
		t.Fatal("validity bits wrong")
	}
	if ctx.Get(std.TCPSyn) != 1 || ctx.Get(std.TCPDport) != 80 {
		t.Fatal("TCP fields wrong")
	}

	echo := packet.NewEchoFrame(packet.MAC{1}, packet.MAC{2}, -5)
	pkt, _ = packet.Parse(echo.Serialize())
	ctx = &Ctx{fields: make([]uint64, len(p.Fields)), sw: sw}
	std.extract(ctx, 0, 0, pkt)
	if ctx.Get(std.EchoValid) != 1 {
		t.Fatal("echo not recognised")
	}
	if got := ctx.Get(std.EchoValue); got != EchoBias-5 {
		t.Fatalf("echo value = %d, want %d", got, EchoBias-5)
	}
}

func TestAnalyzeToyProgram(t *testing.T) {
	p, _ := buildCounterProgram()
	r := AnalyzeProgram(p)
	if r.RegisterCells != 64 || r.RegisterBytes != 512 {
		t.Fatalf("register accounting = %d cells / %d bytes", r.RegisterCells, r.RegisterBytes)
	}
	if r.NumTables != 1 || r.NumActions != 3 {
		t.Fatalf("counts = %+v", r)
	}
	// count_at: mov(1) → regread(2) → add(3) → regwrite(4), plus the
	// lookup step and the gating if: if(1) → lookup(2) → then ops start at
	// depth 2 … regwrite lands at 6.
	if r.LongestDepChain < 5 || r.LongestDepChain > 8 {
		t.Fatalf("LongestDepChain = %d, want ≈6", r.LongestDepChain)
	}
	// Single table: no rule depends on another rule's writes.
	if r.MatchRuleDependencies != 0 {
		t.Fatalf("MatchRuleDependencies = %d, want 0", r.MatchRuleDependencies)
	}
	if r.TotalBytes != r.RegisterBytes+r.TableBytes || r.TableBytes == 0 {
		t.Fatalf("byte totals inconsistent: %+v", r)
	}
}

func TestAnalyzeMatchDependency(t *testing.T) {
	// Table t2 matches on a field written by t1's action: one rule
	// dependency.
	p := NewProgram("dep")
	std := DeclareStdFields(p)
	cls := p.AddField("meta.class", 8)
	p.AddAction(NewAction("classify", 1, Mov(cls, P(0))))
	p.AddAction(NewAction("noop", 0))
	p.AddTable(&TableDef{
		Name: "t1", Keys: []KeySpec{{Field: std.IPv4Dst, Kind: MatchExact}},
		ActionNames: []string{"classify"}, DefaultAction: "noop", MaxEntries: 4,
	})
	p.AddTable(&TableDef{
		Name: "t2", Keys: []KeySpec{{Field: cls, Kind: MatchExact}},
		ActionNames: []string{"noop"}, DefaultAction: "noop", MaxEntries: 4,
	})
	p.Control = []Stmt{Apply("t1"), Apply("t2")}
	r := AnalyzeProgram(p)
	if r.MatchRuleDependencies != 1 {
		t.Fatalf("MatchRuleDependencies = %d, want 1", r.MatchRuleDependencies)
	}
}

func TestRegisterControlPlaneAccess(t *testing.T) {
	p, std := buildCounterProgram()
	sw := mustSwitch(t, p, std)
	reg, err := sw.Register("counters")
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.WriteCell(5, 42); err != nil {
		t.Fatal(err)
	}
	if v, err := reg.Read(5); err != nil || v != 42 {
		t.Fatalf("Read(5) = %d, %v", v, err)
	}
	if _, err := reg.Read(64); err == nil {
		t.Fatal("out-of-bounds control read accepted")
	}
	if err := reg.WriteCell(-1, 0); err == nil {
		t.Fatal("out-of-bounds control write accepted")
	}
	snap := reg.Snapshot()
	if len(snap) != 64 || snap[5] != 42 {
		t.Fatal("Snapshot wrong")
	}
	snap[5] = 0
	if v, _ := reg.Read(5); v != 42 {
		t.Fatal("Snapshot aliases live cells")
	}
	if _, err := sw.Register("ghost"); err == nil {
		t.Fatal("unknown register accepted")
	}
}

func TestRegisterWidthMasking(t *testing.T) {
	p := NewProgram("width")
	std := DeclareStdFields(p)
	x := p.AddField("x", 32)
	p.AddRegister("narrow", 4, 8)
	p.AddAction(NewAction("go", 0,
		Mov(x, C(0x1ff)),
		RegWrite("narrow", C(0), F(x)),
	))
	p.Control = []Stmt{Call("go")}
	sw := mustSwitch(t, p, std)
	sw.ProcessFrame(0, 1, udpTo(1))
	reg, _ := sw.Register("narrow")
	if v, _ := reg.Read(0); v != 0xff {
		t.Fatalf("8-bit cell holds %#x, want 0xff", v)
	}
}

func TestIfElseBranching(t *testing.T) {
	p := NewProgram("branch")
	std := DeclareStdFields(p)
	x := p.AddField("x", 8)
	p.AddAction(NewAction("then", 0, Mov(x, C(1))))
	p.AddAction(NewAction("else", 0, Mov(x, C(2))))
	p.Control = []Stmt{
		If(Cond{A: F(std.TCPValid), Op: CmpEq, B: C(1)},
			Call("then"),
		).WithElse(Call("else")),
	}
	sw := mustSwitch(t, p, std)
	probe := func(b []byte) uint64 {
		pkt, _ := packet.Parse(b)
		ctx := &Ctx{fields: make([]uint64, len(p.Fields)), sw: sw}
		std.extract(ctx, 0, 0, pkt)
		sw.execStmts(ctx, p.Control)
		return ctx.Get(x)
	}
	tcp := packet.NewTCPFrame(1, 2, 3, 4, 0).Serialize()
	udp := udpTo(1)
	if probe(tcp) != 1 {
		t.Fatal("then branch not taken")
	}
	if probe(udp) != 2 {
		t.Fatal("else branch not taken")
	}
}

func TestMatchKindString(t *testing.T) {
	if MatchExact.String() != "exact" || MatchLPM.String() != "lpm" ||
		MatchTernary.String() != "ternary" || MatchKind(9).String() == "" {
		t.Fatal("MatchKind.String wrong")
	}
}

func TestOpCodeString(t *testing.T) {
	if OpAdd.String() != "add" || OpCode(200).String() == "" {
		t.Fatal("OpCode.String wrong")
	}
}

func TestFormatRendersProgram(t *testing.T) {
	p, _ := buildCounterProgram()
	out := Format(p)
	for _, want := range []string{
		"program \"test-counter\"", "target=bmv2",
		"registers (1):", "counters", "64 cells",
		"action count_at(1 params)", "meta.tmp = counters[meta.idx]",
		"table bind", "key ipv4.dst : lpm", "default noop()",
		"apply bind", "if ipv4.valid == 1 {", "egress = std.in_port",
	} {
		if !containsStr(out, want) {
			t.Errorf("Format output missing %q", want)
		}
	}
}

func containsStr(haystack, needle string) bool {
	return len(haystack) >= len(needle) && strings.Contains(haystack, needle)
}

func TestHashOpSemantics(t *testing.T) {
	p := NewProgram("hash")
	std := DeclareStdFields(p)
	h := p.AddField("h", 64)
	p.AddAction(NewAction("go", 0, Hash(h, 1, F(std.IPv4Dst), 0xff)))
	p.Control = []Stmt{Call("go")}
	sw := mustSwitch(t, p, std)
	pkt, _ := packet.Parse(udpTo(packet.ParseIP4(10, 1, 2, 3)))
	ctx := &Ctx{fields: make([]uint64, len(p.Fields)), sw: sw}
	std.extract(ctx, 0, 0, pkt)
	sw.execStmts(ctx, p.Control)
	want := HashValue(1, uint64(packet.ParseIP4(10, 1, 2, 3))) & 0xff
	if got := ctx.Get(h); got != want {
		t.Fatalf("hash op = %d, want %d", got, want)
	}
}

func TestHashOpValidation(t *testing.T) {
	build := func(op Op) error {
		p := NewProgram("bad-hash")
		DeclareStdFields(p)
		h := p.AddField("h", 64)
		op.Dst = F(h)
		p.AddAction(&Action{Name: "a", Ops: []Op{op}})
		p.Control = []Stmt{Call("a")}
		return p.Validate()
	}
	if err := build(Op{Code: OpHash, A: C(1), B: C(0xff), HashID: NumHashFunctions}); !errors.Is(err, ErrInvalidProgram) {
		t.Fatalf("out-of-range hash id accepted: %v", err)
	}
	if err := build(Op{Code: OpHash, A: C(1), B: F(0), HashID: 0}); !errors.Is(err, ErrInvalidProgram) {
		t.Fatalf("field mask accepted: %v", err)
	}
	if err := build(Op{Code: OpHash, A: C(1), B: C(0xff), HashID: 0}); err != nil {
		t.Fatalf("valid hash rejected: %v", err)
	}
}

func TestHashStrictLegal(t *testing.T) {
	p := NewProgram("strict-hash")
	p.Target = TargetStrict
	DeclareStdFields(p)
	h := p.AddField("h", 64)
	p.AddAction(NewAction("go", 0, Hash(h, 0, F(h), 0xff)))
	p.Control = []Stmt{Call("go")}
	if err := p.Validate(); err != nil {
		t.Fatalf("hash rejected on strict target: %v", err)
	}
}

func TestHashValueDeterministic(t *testing.T) {
	for id := 0; id < NumHashFunctions; id++ {
		if HashValue(id, 12345) != HashValue(id, 12345) {
			t.Fatal("hash not deterministic")
		}
	}
	if HashValue(0, 1) == HashValue(1, 1) {
		t.Fatal("hash family members collide on a trivial input")
	}
}

func TestCondEvalAllOperators(t *testing.T) {
	cases := []struct {
		op   CmpOp
		a, b uint64
		want bool
	}{
		{CmpEq, 3, 3, true}, {CmpEq, 3, 4, false},
		{CmpNe, 3, 4, true}, {CmpNe, 3, 3, false},
		{CmpLt, 3, 4, true}, {CmpLt, 4, 3, false}, {CmpLt, 3, 3, false},
		{CmpLe, 3, 3, true}, {CmpLe, 4, 3, false},
		{CmpGt, 4, 3, true}, {CmpGt, 3, 4, false},
		{CmpGe, 3, 3, true}, {CmpGe, 2, 3, false},
	}
	for _, c := range cases {
		if got := (Cond{Op: c.op}).eval(c.a, c.b); got != c.want {
			t.Errorf("eval(%v, %d, %d) = %v", c.op, c.a, c.b, got)
		}
	}
	if (Cond{Op: CmpOp(99)}).eval(1, 1) {
		t.Error("unknown operator evaluated true")
	}
}

func TestFormatOpCoverage(t *testing.T) {
	p := NewProgram("fmt")
	DeclareStdFields(p)
	x := p.AddField("x", 32)
	p.AddRegister("r", 4, 32)
	ops := []Op{
		Mov(x, C(1)), Add(x, F(x), C(2)), Sub(x, F(x), C(1)), Mul(x, F(x), C(3)),
		SatAdd(x, F(x), C(1)), SatSub(x, F(x), C(1)),
		And(x, F(x), C(7)), Or(x, F(x), C(8)), Xor(x, F(x), C(9)), Not(x, F(x)),
		Shl(x, F(x), C(2)), Shr(x, F(x), C(1)),
		Hash(x, 2, F(x), 0xff),
		RegRead(x, "r", C(0)), RegWrite("r", C(1), F(x)),
		EmitDigest(5, x), SetEgress(C(3)), Drop(),
		{Code: OpMov, Dst: F(x), A: P(0)},
		{Code: OpMov, Dst: F(x), A: C(1 << 20)},
		{Code: OpCode(99)},
	}
	for _, op := range ops {
		if s := formatOp(p, op); s == "" {
			t.Errorf("empty rendering for %v", op.Code)
		}
	}
	// Spot-check a few renderings.
	if s := formatOp(p, Hash(x, 2, F(x), 0xff)); s != "x = hash2(x) & 255" {
		t.Errorf("hash rendering = %q", s)
	}
	if s := formatOp(p, Drop()); s != "drop" {
		t.Errorf("drop rendering = %q", s)
	}
	if s := formatOp(p, Op{Code: OpMov, Dst: F(x), A: Ref{Kind: RefKind(9)}}); s != "x = ?" {
		t.Errorf("unknown ref rendering = %q", s)
	}
}

func TestProgramAccessors(t *testing.T) {
	p, _ := buildCounterProgram()
	if id, ok := p.FieldByName("meta.idx"); !ok || p.Fields[id].Name != "meta.idx" {
		t.Fatal("FieldByName lookup failed")
	}
	if _, ok := p.FieldByName("ghost"); ok {
		t.Fatal("FieldByName found a ghost")
	}
	def := RegisterDef{Name: "r", Cells: 10, Width: 12}
	if def.Bytes() != 20 { // 12 bits rounds to 2 bytes
		t.Fatalf("Bytes = %d", def.Bytes())
	}
}

func TestSwitchAccessors(t *testing.T) {
	p, std := buildCounterProgram()
	sw := mustSwitch(t, p, std)
	if sw.Program() != p {
		t.Fatal("Program accessor broken")
	}
	reg, _ := sw.Register("counters")
	if reg.Def().Name != "counters" || reg.Def().Cells != 64 {
		t.Fatalf("Def = %+v", reg.Def())
	}
}
