package p4

import (
	"fmt"
	"sync/atomic"
	"time"

	"stat4/internal/packet"
)

// NumHashFunctions is the size of the simulated hash-engine family.
const NumHashFunctions = 4

// hashMuls are the odd multipliers of the multiply-shift hash family. They
// are shared with core.SparseFreqDist so the reference library and the
// emitted program place keys in identical buckets.
var hashMuls = [NumHashFunctions]uint64{
	0x9e3779b97f4a7c15,
	0xbf58476d1ce4e5b9,
	0x94d049bb133111eb,
	0xd6e8feb86659fd93,
}

// HashValue computes the id-th hash of v (before masking). The family index
// wraps with a mask — NumHashFunctions is a power of two — because the hash
// engine runs per packet and a P4 target has no modulo.
//
//stat4:datapath
func HashValue(id int, v uint64) uint64 {
	h := v * hashMuls[id&(NumHashFunctions-1)]
	return h ^ h>>31
}

// Digest is an alert record pushed from the data plane to the control plane,
// the arrow of Figure 1c. Values holds the digested field values in the
// order the OpDigest listed them.
type Digest struct {
	ID     int
	Values []uint64
}

// FrameOut is a frame emitted by the switch on an egress port. Data points
// into the switch's reusable deparse buffer: it is valid until the next
// Process* call on the same switch, like a DMA region handed to the NIC.
// Callers that retain frames (delayed delivery, logging) must copy.
type FrameOut struct {
	Port uint16
	Data []byte
}

// FrameIn is one input frame of a ProcessBatch call.
type FrameIn struct {
	TsNs uint64
	Port uint16
	Data []byte
}

// Deparser rebuilds the outgoing frame from the original packet and the
// final field values. buf is the switch's reusable deparse buffer, passed
// with length zero; implementations append the frame to it and return the
// result, so steady-state deparsing allocates nothing. The default deparser
// forwards the original frame unchanged; applications that synthesise
// replies (like the echo validation app) install their own.
type Deparser interface {
	Deparse(ctx *Ctx, orig *packet.Packet, buf []byte) []byte
}

type forwardDeparser struct{}

func (forwardDeparser) Deparse(_ *Ctx, orig *packet.Packet, buf []byte) []byte {
	return orig.AppendSerialize(buf)
}

// Ctx is the per-packet execution context: the metadata field values. It is
// handed to deparsers so they can read what the program computed.
type Ctx struct {
	fields []uint64
	sw     *Switch
	args   []uint64 // current action parameters
}

// Get returns a field's current value.
//
//stat4:datapath
func (c *Ctx) Get(id FieldID) uint64 { return c.fields[id] }

// Set sets a field, masked to its declared width. Parsers and deparsers use
// it; program code goes through ops.
//
//stat4:datapath
func (c *Ctx) Set(id FieldID, v uint64) {
	c.fields[id] = v & c.sw.fieldMask[id]
}

// Stats are the switch's global counters.
type Stats struct {
	PktsIn      uint64
	PktsOut     uint64
	Dropped     uint64
	ParseErrors uint64
	// RuntimeErrors counts data-plane faults the simulator tolerates but
	// records: out-of-bounds register accesses.
	RuntimeErrors uint64
	// DigestDrops counts digests lost because the channel to the control
	// plane was full.
	DigestDrops uint64
	// Recirculated counts packets that took the program's recirculation
	// pass — the extra pipeline trips a deployment pays for, so a reader can
	// verify the sampling probability (2^-k of traffic) from the outside.
	Recirculated uint64
}

// switchCounters consolidates the global counters in one place. Every field
// is atomic so a control-plane Stats() snapshot is race-free against the
// single-goroutine data plane, and the data plane pays one uncontended
// atomic add per event.
type switchCounters struct {
	pktsIn      atomic.Uint64
	pktsOut     atomic.Uint64
	dropped     atomic.Uint64
	parseErrs   atomic.Uint64
	runtimeErrs atomic.Uint64
	digestDrops atomic.Uint64
	recircs     atomic.Uint64
}

// Observer receives data-plane instrumentation events. Implementations must
// be allocation-free and cheap — they run on the per-packet hot path — and
// are called from the data-plane goroutine only. telemetry.SwitchMetrics is
// the canonical implementation; its recording path is integer-only and
// passes the same stat4-lint gate as the datapath it measures.
type Observer interface {
	// PacketCost reports one Process* call's wall-clock cost in nanoseconds.
	PacketCost(ns uint64)
	// DigestEmitted reports a digest accepted by the channel.
	DigestEmitted()
	// DigestDropped reports a digest lost to a full channel.
	DigestDropped()
}

// ExecMode selects which interpreter the data plane runs.
type ExecMode uint8

const (
	// ExecCompiled (the default) dispatches over the flattened plan built by
	// compile(): pre-resolved pointers, no per-packet name lookups.
	ExecCompiled ExecMode = iota
	// ExecTree walks the program's statement tree, resolving tables and
	// actions by name per packet — the reference semantics the compiled plan
	// is differentially tested against.
	ExecTree
)

// Switch interprets a validated Program. ProcessFrame must be called from a
// single goroutine (the data plane); table and register control-plane
// methods may be called concurrently with it. Output frames alias internal
// scratch buffers — see FrameOut.
type Switch struct {
	prog     *Program
	std      StdFields
	regs     map[string]*Register
	tables   map[string]*table
	digests  chan Digest
	sink     func(Digest)
	deparser Deparser

	// plan is the compiled execution plan; mode picks it or the reference
	// tree walker. fieldMask caches widthMask(Fields[i].Width) so the hot
	// path masks with one index instead of a struct load and shift.
	plan      *plan
	mode      ExecMode
	fieldMask []uint64

	ctr switchCounters
	obs Observer

	// Per-packet scratch, reused across packets since the data plane is
	// single-threaded (like a pipeline's PHV): the execution context, the
	// decoded packet, table-key extraction (sized at compile time from the
	// max key arity), the deparse buffer, and the one-element output slice.
	scratch    Ctx
	pktScratch packet.Packet
	keyScratch []uint64
	deparseBuf []byte
	outScratch [1]FrameOut
}

// NewSwitch validates the program, instantiates its state and compiles the
// execution plan. The digest channel is buffered with the given capacity (a
// bounded mailbox to the controller; 0 picks a default of 1024).
func NewSwitch(prog *Program, std StdFields, digestBuf int) (*Switch, error) {
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	if digestBuf <= 0 {
		digestBuf = 1024
	}
	sw := &Switch{
		prog:     prog,
		std:      std,
		regs:     make(map[string]*Register, len(prog.Registers)),
		tables:   make(map[string]*table, len(prog.Tables)),
		digests:  make(chan Digest, digestBuf),
		deparser: forwardDeparser{},
	}
	for _, rd := range prog.Registers {
		sw.regs[rd.Name] = newRegister(rd)
	}
	for _, td := range prog.Tables {
		sw.tables[td.Name] = newTable(td, prog)
	}
	sw.compile()
	return sw, nil
}

// SetDeparser installs a custom deparser.
func (sw *Switch) SetDeparser(d Deparser) { sw.deparser = d }

// SetExecMode selects the interpreter. Call it before processing traffic;
// it is not synchronised with the data plane.
func (sw *Switch) SetExecMode(m ExecMode) { sw.mode = m }

// SetObserver attaches data-plane instrumentation (nil detaches). Like
// SetExecMode it must be called before processing traffic; it is not
// synchronised with the data plane. With no observer attached the hot path
// pays exactly one nil check per packet.
func (sw *Switch) SetObserver(o Observer) { sw.obs = o }

// Digests returns the channel carrying data-plane alerts.
func (sw *Switch) Digests() <-chan Digest { return sw.digests }

// SetDigestSink installs a direct digest receiver: with a sink attached,
// sendDigest calls it synchronously from the data-plane goroutine instead of
// going through the buffered channel, so a caller that drains digests after
// every Process* call (the discrete-event network does) pays no channel
// operations on the hot path. A sink never drops: the bounded-mailbox
// semantics belong to the channel, which a sink replaces. Like SetObserver it
// must be installed before processing traffic; digests emitted before the
// sink was attached stay in the channel and must be drained from there. nil
// detaches and restores the channel path.
func (sw *Switch) SetDigestSink(sink func(Digest)) { sw.sink = sink }

// Program returns the interpreted program.
func (sw *Switch) Program() *Program { return sw.prog }

// Register returns a register array by name for control-plane access.
func (sw *Switch) Register(name string) (*Register, error) {
	r, ok := sw.regs[name]
	if !ok {
		return nil, fmt.Errorf("p4: no register %q", name)
	}
	return r, nil
}

// InsertEntry installs a table entry at runtime and returns its ID.
func (sw *Switch) InsertEntry(tbl string, match []MatchValue, prio int, action string, args []uint64) (EntryID, error) {
	t, ok := sw.tables[tbl]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrNoSuchTable, tbl)
	}
	return t.insert(match, prio, action, args)
}

// ModifyEntry rebinds an entry's action and arguments in place, the paper's
// drill-down refinement ("the controller modifies the previously added
// entry").
func (sw *Switch) ModifyEntry(tbl string, id EntryID, action string, args []uint64) error {
	t, ok := sw.tables[tbl]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchTable, tbl)
	}
	return t.modify(id, action, args)
}

// DeleteEntry removes an entry.
func (sw *Switch) DeleteEntry(tbl string, id EntryID) error {
	t, ok := sw.tables[tbl]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchTable, tbl)
	}
	return t.remove(id)
}

// EntryCount returns the number of installed entries in a table.
func (sw *Switch) EntryCount(tbl string) (int, error) {
	t, ok := sw.tables[tbl]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrNoSuchTable, tbl)
	}
	return t.entryCount(), nil
}

// Stats returns a snapshot of the switch counters.
func (sw *Switch) Stats() Stats {
	return Stats{
		PktsIn:        sw.ctr.pktsIn.Load(),
		PktsOut:       sw.ctr.pktsOut.Load(),
		Dropped:       sw.ctr.dropped.Load(),
		ParseErrors:   sw.ctr.parseErrs.Load(),
		RuntimeErrors: sw.ctr.runtimeErrs.Load(),
		DigestDrops:   sw.ctr.digestDrops.Load(),
		Recirculated:  sw.ctr.recircs.Load(),
	}
}

// ProcessFrame runs one frame through the pipeline: parse, execute the
// control flow, deparse. tsNs is the ingress timestamp in nanoseconds (the
// simulator's virtual clock). Unparseable frames are dropped and counted,
// like a real parser's reject state. The returned frames alias switch
// scratch and stay valid until the next Process* call.
func (sw *Switch) ProcessFrame(tsNs uint64, inPort uint16, data []byte) []FrameOut {
	sw.ctr.pktsIn.Add(1)
	var start time.Time
	if sw.obs != nil {
		start = time.Now()
	}
	outs := sw.parseAndProcess(tsNs, inPort, data)
	if sw.obs != nil {
		sw.obs.PacketCost(uint64(time.Since(start)))
	}
	return outs
}

// parseAndProcess is ProcessFrame's body, split out so the observer timing
// wraps parse + execute + deparse in one span.
func (sw *Switch) parseAndProcess(tsNs uint64, inPort uint16, data []byte) []FrameOut {
	if err := packet.ParseInto(&sw.pktScratch, data); err != nil {
		sw.ctr.parseErrs.Add(1)
		sw.ctr.dropped.Add(1)
		return nil
	}
	return sw.processPacket(tsNs, inPort, &sw.pktScratch)
}

// ProcessPacket is ProcessFrame for callers that already hold a decoded
// packet; it avoids the serialize/parse round trip in tight simulation
// loops. The packet must not be mutated while the call runs.
func (sw *Switch) ProcessPacket(tsNs uint64, inPort uint16, pkt *packet.Packet) []FrameOut {
	sw.ctr.pktsIn.Add(1)
	var start time.Time
	if sw.obs != nil {
		start = time.Now()
	}
	outs := sw.processPacket(tsNs, inPort, pkt)
	if sw.obs != nil {
		sw.obs.PacketCost(uint64(time.Since(start)))
	}
	return outs
}

// ProcessBatch runs a batch of frames through the pipeline in order, calling
// emit for every output frame — the entry point replay and benchmark loops
// drive. emit may be nil to process for side effects only. Each emitted
// frame's Data is valid only during its emit call (the buffer is reused for
// the next frame in the batch).
func (sw *Switch) ProcessBatch(batch []FrameIn, emit func(FrameOut)) {
	for i := range batch {
		f := &batch[i]
		outs := sw.ProcessFrame(f.TsNs, f.Port, f.Data)
		if emit != nil {
			for _, o := range outs {
				emit(o)
			}
		}
	}
}

func (sw *Switch) processPacket(tsNs uint64, inPort uint16, pkt *packet.Packet) []FrameOut {
	ctx := &sw.scratch
	fields := ctx.fields
	for i := range fields {
		fields[i] = 0
	}
	sw.std.extract(ctx, tsNs, inPort, pkt)
	if sw.mode == ExecTree {
		sw.execStmts(ctx, sw.prog.Control)
	} else {
		sw.execPlan(ctx)
	}
	// Recirculation: when the main pass raised the flag, the packet makes
	// exactly one extra trip. The flag clears before the pass runs, so the
	// pass cannot re-request it — the bound is structural, mirroring a
	// deployment that budgets one recirculation (the pisa-3pass model).
	if sw.prog.hasRecirc && fields[sw.prog.RecircField] != 0 {
		fields[sw.prog.RecircField] = 0
		sw.ctr.recircs.Add(1)
		if sw.mode == ExecTree {
			sw.execStmts(ctx, sw.prog.RecircControl)
		} else {
			sw.execCode(ctx, sw.plan.recirc)
		}
	}
	if fields[sw.std.Drop] != 0 {
		sw.ctr.dropped.Add(1)
		return nil
	}
	out := sw.deparser.Deparse(ctx, pkt, sw.deparseBuf[:0])
	sw.deparseBuf = out[:0]
	sw.ctr.pktsOut.Add(1)
	sw.outScratch[0] = FrameOut{Port: uint16(fields[sw.std.Egress]), Data: out}
	return sw.outScratch[:]
}

// execStmts interprets a statement list: the ExecTree reference semantics.
// The recursion into IfStmt branches and the iteration over the list walk
// the program's fixed control-flow tree: its depth and size are set when the
// program is emitted, so on the target this is the straight-line pipeline
// itself, not runtime looping.
//
//stat4:datapath
//stat4:exempt:boundedloop walks the compile-time control-flow tree of the emitted program
func (sw *Switch) execStmts(ctx *Ctx, stmts []Stmt) {
	for _, s := range stmts {
		switch st := s.(type) {
		case ApplyStmt:
			t := sw.tables[st.Table]
			// Key extraction: one fixed field copy per declared key. The
			// scratch is pre-sized at compile time; the guard only fires for
			// hand-built switches that bypassed compile.
			if cap(sw.keyScratch) < len(t.def.Keys) {
				//stat4:exempt:allocfree cold guard for hand-built switches; NewSwitch pre-sizes the scratch so this never runs per packet
				sw.keyScratch = make([]uint64, len(t.def.Keys))
			}
			keys := sw.keyScratch[:len(t.def.Keys)]
			for i, k := range t.def.Keys {
				keys[i] = ctx.fields[k.Field]
			}
			e := t.lookup(keys)
			if e != nil {
				a, _ := sw.prog.action(e.Action)
				sw.execAction(ctx, a, e.Args)
			} else if t.def.DefaultAction != "" {
				a, _ := sw.prog.action(t.def.DefaultAction)
				sw.execAction(ctx, a, t.def.DefaultArgs)
			}
		case CallStmt:
			a, _ := sw.prog.action(st.Action)
			sw.execAction(ctx, a, st.Args)
		case IfStmt:
			if st.Cond.eval(sw.resolve(ctx, st.Cond.A), sw.resolve(ctx, st.Cond.B)) {
				sw.execStmts(ctx, st.Then)
			} else {
				sw.execStmts(ctx, st.Else)
			}
		}
	}
}

// resolve reads an operand: a constant, a metadata field, or an action
// parameter.
//
//stat4:datapath
func (sw *Switch) resolve(ctx *Ctx, r Ref) uint64 {
	switch r.Kind {
	case RefConst:
		return r.Const
	case RefField:
		return ctx.fields[r.Field]
	case RefParam:
		return ctx.args[r.Param]
	default:
		return 0
	}
}

// execAction runs one action body: a fixed op sequence with the entry's
// arguments bound as parameters.
//
//stat4:datapath
func (sw *Switch) execAction(ctx *Ctx, a *Action, args []uint64) {
	saved := ctx.args
	ctx.args = args
	//stat4:exempt:boundedloop an action's op list is fixed when the program is emitted; each op is one pipeline primitive
	for _, op := range a.Ops {
		sw.execOp(ctx, op)
	}
	// Restored in straight line rather than by defer: the deferred closure
	// captures ctx and allocates per action execution (allocfree), and
	// execOp has no panic paths to unwind through.
	ctx.args = saved
}

// setField writes a metadata field masked to its declared width.
//
//stat4:datapath
func (sw *Switch) setField(ctx *Ctx, id FieldID, v uint64) {
	ctx.fields[id] = v & sw.fieldMask[id]
}

// execOp interprets one primitive. Every case is work a single pipeline
// stage can do: an ALU op, a register access, a hash-unit invocation, or a
// digest push. The variable shifts in OpShl/OpShr are the simulator
// modelling the op itself — emitted programs only ever use constant shift
// operands (Program.Validate and stat4-lint both enforce it on the emitters).
//
//stat4:datapath
func (sw *Switch) execOp(ctx *Ctx, op Op) {
	switch op.Code {
	case OpMov:
		sw.setField(ctx, op.Dst.Field, sw.resolve(ctx, op.A))
	case OpAdd:
		sw.setField(ctx, op.Dst.Field, sw.resolve(ctx, op.A)+sw.resolve(ctx, op.B))
	case OpSub:
		sw.setField(ctx, op.Dst.Field, sw.resolve(ctx, op.A)-sw.resolve(ctx, op.B))
	case OpMul:
		sw.setField(ctx, op.Dst.Field, sw.resolve(ctx, op.A)*sw.resolve(ctx, op.B))
	case OpSatAdd:
		a, b := sw.resolve(ctx, op.A), sw.resolve(ctx, op.B)
		max := sw.fieldMask[op.Dst.Field]
		sum := a + b
		if sum < a || sum > max {
			sum = max
		}
		ctx.fields[op.Dst.Field] = sum
	case OpSatSub:
		a, b := sw.resolve(ctx, op.A), sw.resolve(ctx, op.B)
		if b >= a {
			sw.setField(ctx, op.Dst.Field, 0)
		} else {
			sw.setField(ctx, op.Dst.Field, a-b)
		}
	case OpAnd:
		sw.setField(ctx, op.Dst.Field, sw.resolve(ctx, op.A)&sw.resolve(ctx, op.B))
	case OpOr:
		sw.setField(ctx, op.Dst.Field, sw.resolve(ctx, op.A)|sw.resolve(ctx, op.B))
	case OpXor:
		sw.setField(ctx, op.Dst.Field, sw.resolve(ctx, op.A)^sw.resolve(ctx, op.B))
	case OpNot:
		sw.setField(ctx, op.Dst.Field, ^sw.resolve(ctx, op.A))
	case OpShl:
		amt := sw.resolve(ctx, op.B)
		if amt >= 64 {
			sw.setField(ctx, op.Dst.Field, 0)
		} else {
			sw.setField(ctx, op.Dst.Field, sw.resolve(ctx, op.A)<<amt) //stat4:exempt:shiftconst simulates the shift primitive; emitted programs pass constant shift operands
		}
	case OpShr:
		amt := sw.resolve(ctx, op.B)
		if amt >= 64 {
			sw.setField(ctx, op.Dst.Field, 0)
		} else {
			sw.setField(ctx, op.Dst.Field, sw.resolve(ctx, op.A)>>amt) //stat4:exempt:shiftconst simulates the shift primitive; emitted programs pass constant shift operands
		}
	case OpRegRead:
		r := sw.regs[op.Reg]
		v, ok := r.read(sw.resolve(ctx, op.A))
		if !ok {
			sw.ctr.runtimeErrs.Add(1)
		}
		sw.setField(ctx, op.Dst.Field, v)
	case OpRegWrite:
		r := sw.regs[op.Reg]
		if !r.write(sw.resolve(ctx, op.A), sw.resolve(ctx, op.B)) {
			sw.ctr.runtimeErrs.Add(1)
		}
	case OpHash:
		sw.setField(ctx, op.Dst.Field, HashValue(op.HashID, sw.resolve(ctx, op.A))&op.B.Const)
	case OpDigest:
		//stat4:exempt:allocfree a digest hands its values to the control-plane mailbox; the allocation is the message itself, as in hardware's digest slot
		d := Digest{ID: op.DigestID, Values: make([]uint64, len(op.Fields))}
		//stat4:exempt:boundedloop a digest's field list is fixed when the program is emitted
		for i, f := range op.Fields {
			d.Values[i] = ctx.fields[f]
		}
		sw.sendDigest(d)
	case OpSetEgress:
		ctx.fields[sw.std.Egress] = sw.resolve(ctx, op.A) & sw.fieldMask[sw.std.Egress]
	case OpDrop:
		ctx.fields[sw.std.Drop] = 1
	}
}

// sendDigest pushes an alert onto the bounded mailbox to the control plane,
// counting (and reporting to the observer) the accept/drop outcome. Both
// interpreters' OpDigest cases funnel through it so emit/drop accounting
// cannot diverge between them.
//
//stat4:datapath
func (sw *Switch) sendDigest(d Digest) {
	if sw.sink != nil {
		sw.sink(d)
		if sw.obs != nil {
			sw.obs.DigestEmitted()
		}
		return
	}
	select {
	case sw.digests <- d:
		if sw.obs != nil {
			sw.obs.DigestEmitted()
		}
	default:
		sw.ctr.digestDrops.Add(1)
		if sw.obs != nil {
			sw.obs.DigestDropped()
		}
	}
}
