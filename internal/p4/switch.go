package p4

import (
	"fmt"
	"sync/atomic"

	"stat4/internal/packet"
)

// NumHashFunctions is the size of the simulated hash-engine family.
const NumHashFunctions = 4

// hashMuls are the odd multipliers of the multiply-shift hash family. They
// are shared with core.SparseFreqDist so the reference library and the
// emitted program place keys in identical buckets.
var hashMuls = [NumHashFunctions]uint64{
	0x9e3779b97f4a7c15,
	0xbf58476d1ce4e5b9,
	0x94d049bb133111eb,
	0xd6e8feb86659fd93,
}

// HashValue computes the id-th hash of v (before masking). The family index
// wraps with a mask — NumHashFunctions is a power of two — because the hash
// engine runs per packet and a P4 target has no modulo.
//
//stat4:datapath
func HashValue(id int, v uint64) uint64 {
	h := v * hashMuls[id&(NumHashFunctions-1)]
	return h ^ h>>31
}

// Digest is an alert record pushed from the data plane to the control plane,
// the arrow of Figure 1c. Values holds the digested field values in the
// order the OpDigest listed them.
type Digest struct {
	ID     int
	Values []uint64
}

// FrameOut is a frame emitted by the switch on an egress port.
type FrameOut struct {
	Port uint16
	Data []byte
}

// Deparser rebuilds the outgoing frame from the original packet and the
// final field values. The default deparser forwards the original frame
// unchanged; applications that synthesise replies (like the echo validation
// app) install their own.
type Deparser interface {
	Deparse(ctx *Ctx, orig *packet.Packet) []byte
}

type forwardDeparser struct{}

func (forwardDeparser) Deparse(_ *Ctx, orig *packet.Packet) []byte { return orig.Serialize() }

// Ctx is the per-packet execution context: the metadata field values. It is
// handed to deparsers so they can read what the program computed.
type Ctx struct {
	fields []uint64
	sw     *Switch
	args   []uint64 // current action parameters
}

// Get returns a field's current value.
//
//stat4:datapath
func (c *Ctx) Get(id FieldID) uint64 { return c.fields[id] }

// Set sets a field, masked to its declared width. Parsers and deparsers use
// it; program code goes through ops.
//
//stat4:datapath
func (c *Ctx) Set(id FieldID, v uint64) {
	c.fields[id] = v & widthMask(c.sw.prog.Fields[id].Width)
}

// Stats are the switch's global counters.
type Stats struct {
	PktsIn      uint64
	PktsOut     uint64
	Dropped     uint64
	ParseErrors uint64
	// RuntimeErrors counts data-plane faults the simulator tolerates but
	// records: out-of-bounds register accesses.
	RuntimeErrors uint64
	// DigestDrops counts digests lost because the channel to the control
	// plane was full.
	DigestDrops uint64
}

// Switch interprets a validated Program. ProcessFrame must be called from a
// single goroutine (the data plane); table and register control-plane
// methods may be called concurrently with it.
type Switch struct {
	prog     *Program
	std      StdFields
	regs     map[string]*Register
	tables   map[string]*table
	digests  chan Digest
	deparser Deparser

	pktsIn, pktsOut, dropped uint64
	parseErrs, runtimeErrs   uint64
	digestDrops              uint64

	// scratch is the per-packet context, reused across packets since the
	// data plane is single-threaded (like a pipeline's PHV).
	scratch    Ctx
	keyScratch []uint64
}

// NewSwitch validates the program and instantiates its state. The digest
// channel is buffered with the given capacity (a bounded mailbox to the
// controller; 0 picks a default of 1024).
func NewSwitch(prog *Program, std StdFields, digestBuf int) (*Switch, error) {
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	if digestBuf <= 0 {
		digestBuf = 1024
	}
	sw := &Switch{
		prog:     prog,
		std:      std,
		regs:     make(map[string]*Register, len(prog.Registers)),
		tables:   make(map[string]*table, len(prog.Tables)),
		digests:  make(chan Digest, digestBuf),
		deparser: forwardDeparser{},
	}
	for _, rd := range prog.Registers {
		sw.regs[rd.Name] = newRegister(rd)
	}
	for _, td := range prog.Tables {
		sw.tables[td.Name] = newTable(td, prog)
	}
	return sw, nil
}

// SetDeparser installs a custom deparser.
func (sw *Switch) SetDeparser(d Deparser) { sw.deparser = d }

// Digests returns the channel carrying data-plane alerts.
func (sw *Switch) Digests() <-chan Digest { return sw.digests }

// Program returns the interpreted program.
func (sw *Switch) Program() *Program { return sw.prog }

// Register returns a register array by name for control-plane access.
func (sw *Switch) Register(name string) (*Register, error) {
	r, ok := sw.regs[name]
	if !ok {
		return nil, fmt.Errorf("p4: no register %q", name)
	}
	return r, nil
}

// InsertEntry installs a table entry at runtime and returns its ID.
func (sw *Switch) InsertEntry(tbl string, match []MatchValue, prio int, action string, args []uint64) (EntryID, error) {
	t, ok := sw.tables[tbl]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrNoSuchTable, tbl)
	}
	return t.insert(match, prio, action, args)
}

// ModifyEntry rebinds an entry's action and arguments in place, the paper's
// drill-down refinement ("the controller modifies the previously added
// entry").
func (sw *Switch) ModifyEntry(tbl string, id EntryID, action string, args []uint64) error {
	t, ok := sw.tables[tbl]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchTable, tbl)
	}
	return t.modify(id, action, args)
}

// DeleteEntry removes an entry.
func (sw *Switch) DeleteEntry(tbl string, id EntryID) error {
	t, ok := sw.tables[tbl]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchTable, tbl)
	}
	return t.remove(id)
}

// EntryCount returns the number of installed entries in a table.
func (sw *Switch) EntryCount(tbl string) (int, error) {
	t, ok := sw.tables[tbl]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrNoSuchTable, tbl)
	}
	return t.entryCount(), nil
}

// Stats returns a snapshot of the switch counters.
func (sw *Switch) Stats() Stats {
	return Stats{
		PktsIn:        atomic.LoadUint64(&sw.pktsIn),
		PktsOut:       atomic.LoadUint64(&sw.pktsOut),
		Dropped:       atomic.LoadUint64(&sw.dropped),
		ParseErrors:   atomic.LoadUint64(&sw.parseErrs),
		RuntimeErrors: atomic.LoadUint64(&sw.runtimeErrs),
		DigestDrops:   atomic.LoadUint64(&sw.digestDrops),
	}
}

// ProcessFrame runs one frame through the pipeline: parse, execute the
// control flow, deparse. tsNs is the ingress timestamp in nanoseconds (the
// simulator's virtual clock). Unparseable frames are dropped and counted,
// like a real parser's reject state.
func (sw *Switch) ProcessFrame(tsNs uint64, inPort uint16, data []byte) []FrameOut {
	atomic.AddUint64(&sw.pktsIn, 1)
	pkt, err := packet.Parse(data)
	if err != nil {
		atomic.AddUint64(&sw.parseErrs, 1)
		atomic.AddUint64(&sw.dropped, 1)
		return nil
	}
	return sw.processPacket(tsNs, inPort, pkt)
}

// ProcessPacket is ProcessFrame for callers that already hold a decoded
// packet; it avoids the serialize/parse round trip in tight simulation
// loops. The packet must not be mutated while the call runs.
func (sw *Switch) ProcessPacket(tsNs uint64, inPort uint16, pkt *packet.Packet) []FrameOut {
	atomic.AddUint64(&sw.pktsIn, 1)
	return sw.processPacket(tsNs, inPort, pkt)
}

func (sw *Switch) processPacket(tsNs uint64, inPort uint16, pkt *packet.Packet) []FrameOut {
	ctx := &sw.scratch
	if ctx.fields == nil {
		ctx.fields = make([]uint64, len(sw.prog.Fields))
		ctx.sw = sw
	} else {
		for i := range ctx.fields {
			ctx.fields[i] = 0
		}
	}
	sw.std.extract(ctx, tsNs, inPort, pkt)
	sw.execStmts(ctx, sw.prog.Control)
	if ctx.fields[sw.std.Drop] != 0 {
		atomic.AddUint64(&sw.dropped, 1)
		return nil
	}
	out := sw.deparser.Deparse(ctx, pkt)
	atomic.AddUint64(&sw.pktsOut, 1)
	return []FrameOut{{Port: uint16(ctx.fields[sw.std.Egress]), Data: out}}
}

// execStmts interprets a statement list. The recursion into IfStmt branches
// and the iteration over the list walk the program's fixed control-flow tree:
// its depth and size are set when the program is emitted, so on the target
// this is the straight-line pipeline itself, not runtime looping.
//
//stat4:datapath
//stat4:exempt:boundedloop walks the compile-time control-flow tree of the emitted program
func (sw *Switch) execStmts(ctx *Ctx, stmts []Stmt) {
	for _, s := range stmts {
		switch st := s.(type) {
		case ApplyStmt:
			t := sw.tables[st.Table]
			// Key extraction: one fixed field copy per declared key.
			if cap(sw.keyScratch) < len(t.def.Keys) {
				sw.keyScratch = make([]uint64, len(t.def.Keys))
			}
			keys := sw.keyScratch[:len(t.def.Keys)]
			for i, k := range t.def.Keys {
				keys[i] = ctx.fields[k.Field]
			}
			e := t.lookup(keys)
			if e != nil {
				a, _ := sw.prog.action(e.Action)
				sw.execAction(ctx, a, e.Args)
			} else if t.def.DefaultAction != "" {
				a, _ := sw.prog.action(t.def.DefaultAction)
				sw.execAction(ctx, a, t.def.DefaultArgs)
			}
		case CallStmt:
			a, _ := sw.prog.action(st.Action)
			sw.execAction(ctx, a, st.Args)
		case IfStmt:
			if st.Cond.eval(sw.resolve(ctx, st.Cond.A), sw.resolve(ctx, st.Cond.B)) {
				sw.execStmts(ctx, st.Then)
			} else {
				sw.execStmts(ctx, st.Else)
			}
		}
	}
}

// resolve reads an operand: a constant, a metadata field, or an action
// parameter.
//
//stat4:datapath
func (sw *Switch) resolve(ctx *Ctx, r Ref) uint64 {
	switch r.Kind {
	case RefConst:
		return r.Const
	case RefField:
		return ctx.fields[r.Field]
	case RefParam:
		return ctx.args[r.Param]
	default:
		return 0
	}
}

// execAction runs one action body: a fixed op sequence with the entry's
// arguments bound as parameters.
//
//stat4:datapath
func (sw *Switch) execAction(ctx *Ctx, a *Action, args []uint64) {
	saved := ctx.args
	ctx.args = args
	defer func() { ctx.args = saved }()
	//stat4:exempt:boundedloop an action's op list is fixed when the program is emitted; each op is one pipeline primitive
	for _, op := range a.Ops {
		sw.execOp(ctx, op)
	}
}

// setField writes a metadata field masked to its declared width.
//
//stat4:datapath
func (sw *Switch) setField(ctx *Ctx, id FieldID, v uint64) {
	ctx.fields[id] = v & widthMask(sw.prog.Fields[id].Width)
}

// execOp interprets one primitive. Every case is work a single pipeline
// stage can do: an ALU op, a register access, a hash-unit invocation, or a
// digest push. The variable shifts in OpShl/OpShr are the simulator
// modelling the op itself — emitted programs only ever use constant shift
// operands (Program.Validate and stat4-lint both enforce it on the emitters).
//
//stat4:datapath
func (sw *Switch) execOp(ctx *Ctx, op Op) {
	switch op.Code {
	case OpMov:
		sw.setField(ctx, op.Dst.Field, sw.resolve(ctx, op.A))
	case OpAdd:
		sw.setField(ctx, op.Dst.Field, sw.resolve(ctx, op.A)+sw.resolve(ctx, op.B))
	case OpSub:
		sw.setField(ctx, op.Dst.Field, sw.resolve(ctx, op.A)-sw.resolve(ctx, op.B))
	case OpMul:
		sw.setField(ctx, op.Dst.Field, sw.resolve(ctx, op.A)*sw.resolve(ctx, op.B))
	case OpSatAdd:
		w := sw.prog.Fields[op.Dst.Field].Width
		a, b := sw.resolve(ctx, op.A), sw.resolve(ctx, op.B)
		max := widthMask(w)
		sum := a + b
		if sum < a || sum > max {
			sum = max
		}
		ctx.fields[op.Dst.Field] = sum
	case OpSatSub:
		a, b := sw.resolve(ctx, op.A), sw.resolve(ctx, op.B)
		if b >= a {
			sw.setField(ctx, op.Dst.Field, 0)
		} else {
			sw.setField(ctx, op.Dst.Field, a-b)
		}
	case OpAnd:
		sw.setField(ctx, op.Dst.Field, sw.resolve(ctx, op.A)&sw.resolve(ctx, op.B))
	case OpOr:
		sw.setField(ctx, op.Dst.Field, sw.resolve(ctx, op.A)|sw.resolve(ctx, op.B))
	case OpXor:
		sw.setField(ctx, op.Dst.Field, sw.resolve(ctx, op.A)^sw.resolve(ctx, op.B))
	case OpNot:
		sw.setField(ctx, op.Dst.Field, ^sw.resolve(ctx, op.A))
	case OpShl:
		amt := sw.resolve(ctx, op.B)
		if amt >= 64 {
			sw.setField(ctx, op.Dst.Field, 0)
		} else {
			sw.setField(ctx, op.Dst.Field, sw.resolve(ctx, op.A)<<amt) //stat4:exempt:shiftconst simulates the shift primitive; emitted programs pass constant shift operands
		}
	case OpShr:
		amt := sw.resolve(ctx, op.B)
		if amt >= 64 {
			sw.setField(ctx, op.Dst.Field, 0)
		} else {
			sw.setField(ctx, op.Dst.Field, sw.resolve(ctx, op.A)>>amt) //stat4:exempt:shiftconst simulates the shift primitive; emitted programs pass constant shift operands
		}
	case OpRegRead:
		r := sw.regs[op.Reg]
		v, ok := r.read(sw.resolve(ctx, op.A))
		if !ok {
			atomic.AddUint64(&sw.runtimeErrs, 1)
		}
		sw.setField(ctx, op.Dst.Field, v)
	case OpRegWrite:
		r := sw.regs[op.Reg]
		if !r.write(sw.resolve(ctx, op.A), sw.resolve(ctx, op.B)) {
			atomic.AddUint64(&sw.runtimeErrs, 1)
		}
	case OpHash:
		sw.setField(ctx, op.Dst.Field, HashValue(op.HashID, sw.resolve(ctx, op.A))&op.B.Const)
	case OpDigest:
		d := Digest{ID: op.DigestID, Values: make([]uint64, len(op.Fields))}
		//stat4:exempt:boundedloop a digest's field list is fixed when the program is emitted
		for i, f := range op.Fields {
			d.Values[i] = ctx.fields[f]
		}
		select {
		case sw.digests <- d:
		default:
			atomic.AddUint64(&sw.digestDrops, 1)
		}
	case OpSetEgress:
		ctx.fields[sw.std.Egress] = sw.resolve(ctx, op.A) & widthMask(sw.prog.Fields[sw.std.Egress].Width)
	case OpDrop:
		ctx.fields[sw.std.Drop] = 1
	}
}
