package p4

// This file is the compile step: NewSwitch lowers the validated Program into
// a flattened execution plan once, so the per-packet path never resolves a
// name, walks the statement tree, or touches a map. That mirrors a real
// pipeline, where the compiler fixes the stage layout and the driver resolves
// action and register references at rule-install time — per-packet work is
// dispatch over pre-bound state. The tree-walking interpreter in switch.go is
// kept as the reference semantics (ExecTree); differential tests replay the
// same streams through both and demand identical behaviour.

// compiledAction is an Action lowered against one switch's state: register
// names resolved to *Register, destination width masks precomputed. It is
// per-switch, not per-program, because the pointers are into this switch's
// register arrays.
type compiledAction struct {
	name string
	ops  []cop
}

// cop is one lowered primitive. Compared to Op, the destination is pre-split
// into field index + width mask and the register name is a direct pointer.
type cop struct {
	code     OpCode
	dst      FieldID
	dstMask  uint64
	a, b     Ref
	reg      *Register
	hashID   int
	digestID int
	fields   []FieldID
}

// instKind discriminates plan instructions.
type instKind uint8

const (
	instApply  instKind = iota // apply tbl; on miss run act/args if non-nil
	instCall                   // run act/args
	instBranch                 // eval cond; fall through on true, jump to target on false
	instJump                   // unconditional jump to target
)

// inst is one slot of the flattened control flow. IfStmt nesting lowers to
// branch/jump with strictly forward targets, so plan execution is a single
// monotone pass over the slice — the software shape of a feed-forward
// pipeline.
type inst struct {
	kind instKind

	// instApply: the table plus its key fields pre-extracted from the def.
	tbl       *table
	keyFields []FieldID

	// instApply (resolved default action) and instCall.
	act  *compiledAction
	args []uint64

	// instBranch, instJump.
	cond   Cond
	target int
}

// plan is the compiled program: the flattened control flow plus the resolved
// action set that table inserts bind entries against. recirc is the lowered
// recirculation pass (empty when the program declares none); its branch and
// jump targets index into the recirc slice itself.
type plan struct {
	code    []inst
	recirc  []inst
	actions map[string]*compiledAction
}

// compile builds the switch's execution plan. Called once from NewSwitch,
// after registers and tables exist and the program has validated; everything
// the per-packet path needs is resolved here.
func (sw *Switch) compile() {
	acts := make(map[string]*compiledAction, len(sw.prog.Actions))
	for _, a := range sw.prog.Actions {
		acts[a.Name] = sw.compileAction(a)
	}
	c := &compiler{sw: sw, acts: acts}
	sw.plan = &plan{
		code:    c.lowerStmts(nil, sw.prog.Control),
		recirc:  c.lowerStmts(nil, sw.prog.RecircControl),
		actions: acts,
	}

	// Tables resolve entry actions against the compiled set at insert,
	// modify and restore time — the rule-install moment, as on hardware.
	maxKeys := 0
	for _, t := range sw.tables {
		t.acts = acts
		if len(t.def.Keys) > maxKeys {
			maxKeys = len(t.def.Keys)
		}
	}

	// Scratch sized once: key extraction never grows a slice per apply, and
	// the per-packet context is ready before the first frame.
	sw.keyScratch = make([]uint64, maxKeys)
	sw.fieldMask = make([]uint64, len(sw.prog.Fields))
	for i, f := range sw.prog.Fields {
		sw.fieldMask[i] = widthMask(f.Width)
	}
	sw.scratch.fields = make([]uint64, len(sw.prog.Fields))
	sw.scratch.sw = sw
}

// compileAction lowers one action body.
func (sw *Switch) compileAction(a *Action) *compiledAction {
	ca := &compiledAction{name: a.Name, ops: make([]cop, len(a.Ops))}
	for i, op := range a.Ops {
		co := cop{
			code:     op.Code,
			a:        op.A,
			b:        op.B,
			hashID:   op.HashID,
			digestID: op.DigestID,
			fields:   op.Fields,
		}
		if op.Dst.Kind == RefField {
			co.dst = op.Dst.Field
			co.dstMask = widthMask(sw.prog.Fields[op.Dst.Field].Width)
		}
		if op.Reg != "" {
			co.reg = sw.regs[op.Reg]
		}
		ca.ops[i] = co
	}
	return ca
}

// compiler threads the resolved action set through statement lowering.
type compiler struct {
	sw   *Switch
	acts map[string]*compiledAction
}

// lowerStmts appends the lowering of a statement list to code. An IfStmt
// becomes
//
//	branch cond → else        (falls through into then on true)
//	  ...then...
//	jump → end                (only when an else branch exists)
//	  ...else...
//	end:
//
// so every target is an index strictly after the instruction that names it.
func (c *compiler) lowerStmts(code []inst, stmts []Stmt) []inst {
	for _, s := range stmts {
		switch st := s.(type) {
		case ApplyStmt:
			t := c.sw.tables[st.Table]
			kf := make([]FieldID, len(t.def.Keys))
			for i, k := range t.def.Keys {
				kf[i] = k.Field
			}
			in := inst{kind: instApply, tbl: t, keyFields: kf}
			if t.def.DefaultAction != "" {
				in.act = c.acts[t.def.DefaultAction]
				in.args = t.def.DefaultArgs
			}
			code = append(code, in)
		case CallStmt:
			code = append(code, inst{kind: instCall, act: c.acts[st.Action], args: st.Args})
		case IfStmt:
			bi := len(code)
			code = append(code, inst{kind: instBranch, cond: st.Cond})
			code = c.lowerStmts(code, st.Then)
			if len(st.Else) == 0 {
				code[bi].target = len(code)
			} else {
				ji := len(code)
				code = append(code, inst{kind: instJump})
				code[bi].target = len(code)
				code = c.lowerStmts(code, st.Else)
				code[ji].target = len(code)
			}
		}
	}
	return code
}

// execPlan drives the compiled plan for one packet. Branch and jump targets
// are strictly forward (see lowerStmts), so pc is monotone and the walk is
// bounded by the plan length — the same fixed control flow execStmts walks as
// a tree, minus the per-packet name resolution.
//
//stat4:datapath
func (sw *Switch) execPlan(ctx *Ctx) {
	sw.execCode(ctx, sw.plan.code)
}

// execCode runs one lowered statement list — the main pass or the
// recirculation pass.
//
//stat4:datapath
//stat4:exempt:boundedloop pc only moves forward through the compile-time flattened control flow; the walk is bounded by the emitted program's size
func (sw *Switch) execCode(ctx *Ctx, code []inst) {
	for pc := 0; pc < len(code); {
		in := &code[pc]
		switch in.kind {
		case instApply:
			keys := sw.keyScratch[:len(in.keyFields)]
			//stat4:exempt:boundedloop a table's key list is fixed when the program is emitted
			for i, f := range in.keyFields {
				keys[i] = ctx.fields[f]
			}
			if e := in.tbl.lookup(keys); e != nil {
				sw.execCompiled(ctx, e.act, e.Args)
			} else if in.act != nil {
				sw.execCompiled(ctx, in.act, in.args)
			}
			pc++
		case instCall:
			sw.execCompiled(ctx, in.act, in.args)
			pc++
		case instBranch:
			if in.cond.eval(sw.resolve(ctx, in.cond.A), sw.resolve(ctx, in.cond.B)) {
				pc++
			} else {
				pc = in.target
			}
		default: // instJump
			pc = in.target
		}
	}
}

// execCompiled runs one lowered action body with the entry's arguments bound.
//
//stat4:datapath
func (sw *Switch) execCompiled(ctx *Ctx, a *compiledAction, args []uint64) {
	saved := ctx.args
	ctx.args = args
	ops := a.ops
	//stat4:exempt:boundedloop an action's op list is fixed when the program is emitted; each op is one pipeline primitive
	for i := range ops {
		sw.execCop(ctx, &ops[i])
	}
	ctx.args = saved
}

// execCop interprets one lowered primitive: execOp with the width mask and
// register pointer pre-resolved. The variable shifts in OpShl/OpShr are the
// simulator modelling the op itself — emitted programs only ever use constant
// shift operands (Program.Validate and stat4-lint both enforce it).
//
//stat4:datapath
func (sw *Switch) execCop(ctx *Ctx, op *cop) {
	switch op.code {
	case OpMov:
		ctx.fields[op.dst] = sw.resolve(ctx, op.a) & op.dstMask
	case OpAdd:
		ctx.fields[op.dst] = (sw.resolve(ctx, op.a) + sw.resolve(ctx, op.b)) & op.dstMask
	case OpSub:
		ctx.fields[op.dst] = (sw.resolve(ctx, op.a) - sw.resolve(ctx, op.b)) & op.dstMask
	case OpMul:
		ctx.fields[op.dst] = (sw.resolve(ctx, op.a) * sw.resolve(ctx, op.b)) & op.dstMask
	case OpSatAdd:
		a, b := sw.resolve(ctx, op.a), sw.resolve(ctx, op.b)
		sum := a + b
		if sum < a || sum > op.dstMask {
			sum = op.dstMask
		}
		ctx.fields[op.dst] = sum
	case OpSatSub:
		a, b := sw.resolve(ctx, op.a), sw.resolve(ctx, op.b)
		if b >= a {
			ctx.fields[op.dst] = 0
		} else {
			ctx.fields[op.dst] = (a - b) & op.dstMask
		}
	case OpAnd:
		ctx.fields[op.dst] = sw.resolve(ctx, op.a) & sw.resolve(ctx, op.b) & op.dstMask
	case OpOr:
		ctx.fields[op.dst] = (sw.resolve(ctx, op.a) | sw.resolve(ctx, op.b)) & op.dstMask
	case OpXor:
		ctx.fields[op.dst] = (sw.resolve(ctx, op.a) ^ sw.resolve(ctx, op.b)) & op.dstMask
	case OpNot:
		ctx.fields[op.dst] = ^sw.resolve(ctx, op.a) & op.dstMask
	case OpShl:
		amt := sw.resolve(ctx, op.b)
		if amt >= 64 {
			ctx.fields[op.dst] = 0
		} else {
			ctx.fields[op.dst] = sw.resolve(ctx, op.a) << amt & op.dstMask //stat4:exempt:shiftconst simulates the shift primitive; emitted programs pass constant shift operands
		}
	case OpShr:
		amt := sw.resolve(ctx, op.b)
		if amt >= 64 {
			ctx.fields[op.dst] = 0
		} else {
			ctx.fields[op.dst] = sw.resolve(ctx, op.a) >> amt & op.dstMask //stat4:exempt:shiftconst simulates the shift primitive; emitted programs pass constant shift operands
		}
	case OpRegRead:
		v, ok := op.reg.read(sw.resolve(ctx, op.a))
		if !ok {
			sw.ctr.runtimeErrs.Add(1)
		}
		ctx.fields[op.dst] = v & op.dstMask
	case OpRegWrite:
		if !op.reg.write(sw.resolve(ctx, op.a), sw.resolve(ctx, op.b)) {
			sw.ctr.runtimeErrs.Add(1)
		}
	case OpHash:
		ctx.fields[op.dst] = HashValue(op.hashID, sw.resolve(ctx, op.a)) & op.b.Const & op.dstMask
	case OpDigest:
		//stat4:exempt:allocfree a digest hands its values to the control-plane mailbox; the allocation is the message itself, as in hardware's digest slot
		d := Digest{ID: op.digestID, Values: make([]uint64, len(op.fields))}
		//stat4:exempt:boundedloop a digest's field list is fixed when the program is emitted
		for i, f := range op.fields {
			d.Values[i] = ctx.fields[f]
		}
		sw.sendDigest(d)
	case OpSetEgress:
		ctx.fields[sw.std.Egress] = sw.resolve(ctx, op.a) & sw.fieldMask[sw.std.Egress]
	case OpDrop:
		ctx.fields[sw.std.Drop] = 1
	}
}
