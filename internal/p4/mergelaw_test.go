package p4

import (
	"strings"
	"testing"
)

// mergeProg builds a minimal program with one counter register and the
// given actions, all kinds declared explicitly.
func mergeProg(t *testing.T, build func(p *Program, idx, v FieldID)) *Program {
	t.Helper()
	p := NewProgram("mergelaw")
	idx := p.AddField("m.idx", 32)
	v := p.AddField("m.v", 64)
	p.AddRegister("ctr", 16, 64)
	p.SetRegisterMerge("ctr", MergeSum)
	build(p, idx, v)
	return p
}

func findingsContaining(fs []string, substr string) int {
	n := 0
	for _, f := range fs {
		if strings.Contains(f, substr) {
			n++
		}
	}
	return n
}

// A read → add → write chain on the same cell is merge-safe, even when the
// read and the write-back live in different actions (the emitted programs
// split them that way).
func TestMergeLawAdditiveChainAcrossActions(t *testing.T) {
	p := mergeProg(t, func(p *Program, idx, v FieldID) {
		p.AddAction(NewAction("load", 0,
			Mov(idx, C(3)),
			RegRead(v, "ctr", F(idx)),
		))
		p.AddAction(NewAction("bump", 0,
			Add(v, F(v), C(1)),
			RegWrite("ctr", F(idx), F(v)),
		))
	})
	if fs := CheckMergeLaw(p, nil); len(fs) != 0 {
		t.Fatalf("additive chain flagged: %v", fs)
	}
}

// Overwriting a MergeSum cell with a constant is non-additive and needs a
// declared exemption; with one, the program is clean and the exemption is
// not stale.
func TestMergeLawNonAdditiveWrite(t *testing.T) {
	build := func(p *Program, idx, v FieldID) {
		p.AddAction(NewAction("reset", 0,
			Mov(idx, C(0)),
			RegWrite("ctr", F(idx), C(0)),
		))
	}
	p := mergeProg(t, build)
	fs := CheckMergeLaw(p, nil)
	if findingsContaining(fs, "non-additively") != 1 {
		t.Fatalf("constant overwrite not flagged: %v", fs)
	}

	p = mergeProg(t, build)
	p.ExemptMergeWrite("reset", "ctr", "interval reset driven by the control plane")
	if fs := CheckMergeLaw(p, nil); len(fs) != 0 {
		t.Fatalf("exempted overwrite still flagged: %v", fs)
	}
}

// A value laundered through a multiply loses its additive provenance even
// though a read feeds it.
func TestMergeLawMultiplyBreaksProvenance(t *testing.T) {
	p := mergeProg(t, func(p *Program, idx, v FieldID) {
		p.AddAction(NewAction("square", 0,
			Mov(idx, C(0)),
			RegRead(v, "ctr", F(idx)),
			Mul(v, F(v), F(v)),
			RegWrite("ctr", F(idx), F(v)),
		))
	})
	if findingsContaining(CheckMergeLaw(p, nil), "non-additively") != 1 {
		t.Fatalf("multiplied write-back not flagged: %v", CheckMergeLaw(p, nil))
	}
}

// Writing a different cell than the one read is not additive: cross-cell
// moves do not sum across replicas.
func TestMergeLawCrossCellWrite(t *testing.T) {
	p := mergeProg(t, func(p *Program, idx, v FieldID) {
		other := p.AddField("m.other", 32)
		p.AddAction(NewAction("shift", 0,
			Mov(idx, C(0)),
			Mov(other, C(1)),
			RegRead(v, "ctr", F(idx)),
			Add(v, F(v), C(1)),
			RegWrite("ctr", F(other), F(v)),
		))
	})
	if findingsContaining(CheckMergeLaw(p, nil), "non-additively") != 1 {
		t.Fatalf("cross-cell write not flagged: %v", CheckMergeLaw(p, nil))
	}
}

// An exemption no write exercises is stale and reported.
func TestMergeLawStaleExemption(t *testing.T) {
	p := mergeProg(t, func(p *Program, idx, v FieldID) {
		p.AddAction(NewAction("load", 0,
			Mov(idx, C(0)),
			RegRead(v, "ctr", F(idx)),
			Add(v, F(v), C(1)),
			RegWrite("ctr", F(idx), F(v)),
		))
	})
	p.ExemptMergeWrite("load", "ctr", "declared but the write is additive")
	if findingsContaining(CheckMergeLaw(p, nil), "stale") != 1 {
		t.Fatalf("stale exemption not reported: %v", CheckMergeLaw(p, nil))
	}
}

// Undeclared kinds, undocumented MergeDerived registers, and bad recompute
// sets are each their own finding.
func TestMergeLawDeclarations(t *testing.T) {
	p := NewProgram("decls")
	p.AddRegister("implicit", 4, 64)
	p.AddRegister("derived", 4, 64)
	p.SetRegisterMerge("derived", MergeDerived)
	p.AddRegister("summed", 4, 64)
	p.SetRegisterMerge("summed", MergeSum)

	fs := CheckMergeLaw(p, []string{"missing", "summed"})
	for _, want := range []string{
		`register "implicit" does not declare`,
		`MergeDerived register "derived" is neither recomputed`,
		`recomputed register "missing" is not declared`,
		`recomputed register "summed" is MergeSum`,
	} {
		if findingsContaining(fs, want) != 1 {
			t.Errorf("missing finding %q in %v", want, fs)
		}
	}

	// A MergeWhy note settles the derived register; a recompute slot would
	// too.
	p.SetMergeWhy("derived", "replica-local scratch")
	fs = CheckMergeLaw(p, nil)
	if findingsContaining(fs, `"derived"`) != 0 {
		t.Errorf("documented derived register still flagged: %v", fs)
	}
}
