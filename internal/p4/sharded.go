package p4

import (
	"encoding/binary"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"stat4/internal/packet"
	"stat4/internal/ring"
)

// ShardedSwitch runs N replicas ("shards") of one program behind an
// RSS-style flow-hash dispatcher, modelling a multi-core or multi-pipeline
// deployment of the same Stat4 program. Every frame is steered by a hash of
// its 5-tuple, so all packets of a flow land on the same shard and per-flow
// register state never races; each shard keeps the single-goroutine
// data-plane contract of Switch.
//
// ProcessBatch partitions a batch by shard and runs the shards concurrently,
// then reduces outputs in shard-index order: for shard 0, 1, … its digests
// are forwarded to the merged mailbox and its frames handed to emit. Given
// the same batch the reduction order is deterministic, which is what the
// differential tests pin — outputs are grouped by shard rather than
// interleaved in arrival order, the one observable difference from a single
// switch.
//
// Register state stays sharded; MergedSnapshot combines it on demand the way
// a controller combines reports from independent switches: MergeSum
// registers add cell-wise, MergeDerived registers are zeroed for downstream
// recomputation (see stat4p4.CanonicalizeSnapshot).
type ShardedSwitch struct {
	prog    *Program
	shards  []*Switch
	digests chan Digest

	parts [][]FrameIn    // per-shard batch partitions, reused
	outs  []*shardOutBuf // per-shard buffered outputs, reused
	emits []func(FrameOut)

	// The batch handoff: one SPSC descriptor ring plus a parker per shard.
	// ProcessBatch (the single producer) pushes one descriptor per non-empty
	// shard; the shard worker (the single consumer) spins briefly, then parks.
	// At steady state a handoff costs ring ops only — no channel send/recv.
	rings   []*ring.SPSC
	parkers []*ring.Parker
	done    sync.WaitGroup // batch completion, Done'd by workers per descriptor
	workers sync.WaitGroup // worker goroutines, joined by Close

	sink func(Digest) // direct fleet-level receiver, replaces the merged mailbox

	digestDrops atomic.Uint64 // lost forwarding to the merged mailbox
	batchSeq    uint64        // producer-owned batch sequence (debug aid in descriptors)
	closed      bool
}

// closeSeq is the poison descriptor sequence Close pushes to stop a worker.
// Batch descriptors carry a monotonically increasing sequence, so the
// all-ones value can never collide.
const closeSeq = ^uint64(0)

// workerSpins is how many TryPop polls (each yielding the processor) a shard
// worker makes before parking. The budget is deliberately small: the producer
// never yields inside its reduce/partition phase, so one scheduler round trip
// is enough for the next batch to appear, and a handful of polls covers it —
// back-to-back batches are handled with ring ops only, while larger budgets
// just multiply Gosched churn across shards on a loaded host. The park/unpark
// channel machinery only runs when the pipeline actually goes idle.
const workerSpins = 8

// outRef locates one buffered output frame inside a shard's byte buffer.
type outRef struct {
	port     uint16
	off, end int
}

// shardOutBuf collects a shard's output frames during a concurrent batch.
// The bytes are copied out of the shard's deparse scratch (which the next
// packet in the partition overwrites) into one append-only buffer, so a
// steady-state batch allocates nothing once the buffer has grown to the
// high-water mark.
type shardOutBuf struct {
	refs  []outRef
	bytes []byte
}

// NewShardedSwitch builds n replicas of the program, each with its own
// registers, tables and digest channel of the given capacity, plus a merged
// digest mailbox of the same capacity, and starts one worker goroutine per
// shard. Call Close to stop the workers.
func NewShardedSwitch(prog *Program, std StdFields, n, digestBuf int) (*ShardedSwitch, error) {
	if n <= 0 {
		return nil, fmt.Errorf("p4: sharded switch with %d shards", n)
	}
	if digestBuf <= 0 {
		digestBuf = 1024
	}
	ss := &ShardedSwitch{
		prog:    prog,
		shards:  make([]*Switch, n),
		digests: make(chan Digest, digestBuf),
		parts:   make([][]FrameIn, n),
		outs:    make([]*shardOutBuf, n),
		emits:   make([]func(FrameOut), n),
		rings:   make([]*ring.SPSC, n),
		parkers: make([]*ring.Parker, n),
	}
	for i := range ss.shards {
		sw, err := NewSwitch(prog, std, digestBuf)
		if err != nil {
			return nil, err
		}
		ss.shards[i] = sw
		buf := &shardOutBuf{}
		ss.outs[i] = buf
		ss.emits[i] = func(o FrameOut) {
			off := len(buf.bytes)
			buf.bytes = append(buf.bytes, o.Data...)
			buf.refs = append(buf.refs, outRef{port: o.Port, off: off, end: len(buf.bytes)})
		}
		// Capacity 2: one in-flight batch descriptor plus the close token.
		// ProcessBatch waits for completion before the next push, so the ring
		// can never fill from batch traffic alone.
		ss.rings[i] = ring.NewSPSC(2)
		ss.parkers[i] = ring.NewParker()
		ss.workers.Add(1)
		go ss.worker(i)
	}
	return ss, nil
}

// worker is shard i's data-plane goroutine: it owns the shard exclusively,
// popping one descriptor per batch from its ring. The atomic ring publish in
// ProcessBatch orders the partition writes before the pop; done.Done orders
// the outputs back. The worker spins (yielding between polls, so co-scheduled
// shards and producers keep the processor) and parks only after the spin
// budget misses, exiting when it pops the close token.
func (ss *ShardedSwitch) worker(i int) {
	defer ss.workers.Done()
	sw := ss.shards[i]
	r := ss.rings[i]
	p := ss.parkers[i]
	var d ring.Desc
	for {
		if !r.TryPop(&d) {
			hit := false
			for s := 0; s < workerSpins; s++ {
				runtime.Gosched()
				if r.TryPop(&d) {
					hit = true
					break
				}
			}
			if !hit {
				p.Park(func() bool { return r.Len() > 0 })
				continue // Park may return spuriously; re-poll
			}
		}
		if d.Seq == closeSeq {
			return
		}
		sw.ProcessBatch(ss.parts[i], ss.emits[i])
		ss.done.Done()
	}
}

// Close stops and joins the shard workers: it pushes a close token through
// every shard ring, wakes any parked worker, and returns once all worker
// goroutines have exited. The switch must be idle (no ProcessBatch in
// flight); further Process* calls panic. Close is idempotent.
func (ss *ShardedSwitch) Close() {
	if ss.closed {
		return
	}
	ss.closed = true
	for i := range ss.rings {
		for !ss.rings[i].TryPush(ring.Desc{Seq: closeSeq}) {
			runtime.Gosched() // ring holds at most one stale descriptor
		}
		ss.parkers[i].Unpark()
	}
	ss.workers.Wait()
}

// NumShards returns the replica count.
func (ss *ShardedSwitch) NumShards() int { return len(ss.shards) }

// Shard returns replica i, for per-shard control-plane work (binding table
// entries, attaching observers, reading registers). The control plane must
// drive every shard identically for MergedSnapshot's entry view (taken from
// shard 0) to be representative.
func (ss *ShardedSwitch) Shard(i int) *Switch { return ss.shards[i] }

// Program returns the replicated program.
func (ss *ShardedSwitch) Program() *Program { return ss.prog }

// Digests returns the merged alert mailbox. ProcessBatch forwards each
// shard's digests into it in shard-index order after the concurrent phase;
// the serial Process* paths forward eagerly.
func (ss *ShardedSwitch) Digests() <-chan Digest { return ss.digests }

// SetDigestSink installs a direct fleet-level digest receiver: digests
// forwarded from the shards are handed to the sink instead of the merged
// mailbox, with no channel operations or capacity drops on the forwarding
// side. The sink runs on whichever goroutine forwards — the caller's for
// every Process* entry point, since forwarding happens in the reduce phase,
// never on a shard worker. Install it before processing traffic; nil
// detaches and restores the mailbox path.
func (ss *ShardedSwitch) SetDigestSink(sink func(Digest)) { ss.sink = sink }

// ShardOf returns the shard index the dispatcher steers a raw frame to.
//
//stat4:datapath
func (ss *ShardedSwitch) ShardOf(data []byte) int {
	return shardIndex(FlowKey(data), len(ss.shards))
}

// ShardOfPacket is ShardOf for an already-decoded packet.
//
//stat4:datapath
func (ss *ShardedSwitch) ShardOfPacket(pkt *packet.Packet) int {
	return shardIndex(PacketFlowKey(pkt), len(ss.shards))
}

// shardIndex maps a flow key onto [0, n) without a modulo (the dispatcher is
// per-packet hardware): the key is hashed once more, and the upper 32 bits
// are scaled by n with a multiply-shift — Lemire's fast range reduction.
//
//stat4:datapath
func shardIndex(key uint64, n int) int {
	h32 := HashValue(0, key) >> 32
	return int((h32 * uint64(n)) >> 32)
}

// FlowKey computes the RSS dispatch key of a raw frame: a hash-mix of the
// IPv4 5-tuple (source, destination, protocol, transport ports) for IPv4
// frames, or of the Ethernet header for everything else. For any frame the
// switch parser accepts, FlowKey(frame) equals PacketFlowKey of the decoded
// packet; frames the parser would reject still get a deterministic key (the
// dispatcher runs before the parser, like a NIC's RSS engine).
//
//stat4:datapath
func FlowKey(data []byte) uint64 {
	if len(data) >= 34 && binary.BigEndian.Uint16(data[12:14]) == uint16(packet.EtherTypeIPv4) {
		vihl := data[14]
		ihl := int(vihl&0x0f) * 4
		if vihl>>4 == 4 && ihl >= 20 && len(data) >= 14+ihl {
			src := binary.BigEndian.Uint32(data[26:30])
			dst := binary.BigEndian.Uint32(data[30:34])
			proto := data[23]
			var ports uint64
			if (proto == uint8(packet.ProtoTCP) || proto == uint8(packet.ProtoUDP)) && len(data) >= 14+ihl+4 {
				ports = uint64(binary.BigEndian.Uint32(data[14+ihl : 14+ihl+4]))
			}
			return tupleKey(src, dst, proto, ports)
		}
	}
	var hdr [14]byte
	copy(hdr[:], data)
	return etherKey(hdr)
}

// PacketFlowKey computes the same dispatch key from a decoded packet, for
// callers (the discrete-event network) that inject packets rather than raw
// frames.
//
//stat4:datapath
func PacketFlowKey(pkt *packet.Packet) uint64 {
	if pkt.HasIPv4 {
		var ports uint64
		switch {
		case pkt.HasTCP:
			ports = uint64(pkt.TCP.SrcPort)<<16 | uint64(pkt.TCP.DstPort)
		case pkt.HasUDP:
			ports = uint64(pkt.UDP.SrcPort)<<16 | uint64(pkt.UDP.DstPort)
		}
		return tupleKey(uint32(pkt.IPv4.Src), uint32(pkt.IPv4.Dst), uint8(pkt.IPv4.Proto), ports)
	}
	var hdr [14]byte
	copy(hdr[0:6], pkt.Eth.Dst[:])
	copy(hdr[6:12], pkt.Eth.Src[:])
	binary.BigEndian.PutUint16(hdr[12:14], uint16(pkt.Eth.Type))
	return etherKey(hdr)
}

// tupleKey mixes the 5-tuple into one key with two hash-engine passes.
//
//stat4:datapath
func tupleKey(src, dst uint32, proto uint8, ports uint64) uint64 {
	k1 := uint64(src)<<32 | uint64(dst)
	k2 := uint64(proto)<<32 | ports
	return HashValue(1, k1) ^ HashValue(2, k2)
}

// etherKey mixes a (zero-padded) Ethernet header into one key.
//
//stat4:datapath
func etherKey(hdr [14]byte) uint64 {
	hi := binary.BigEndian.Uint64(hdr[0:8])
	lo := uint64(binary.BigEndian.Uint32(hdr[8:12]))<<16 | uint64(binary.BigEndian.Uint16(hdr[12:14]))
	return HashValue(1, hi) ^ HashValue(2, lo)
}

// ProcessFrame steers one frame to its shard and runs it there, forwarding
// any digests it raised to the merged mailbox. Like Switch.ProcessFrame the
// returned frames alias shard scratch, valid until the next Process* call on
// this sharded switch.
func (ss *ShardedSwitch) ProcessFrame(tsNs uint64, inPort uint16, data []byte) []FrameOut {
	sw := ss.shards[ss.ShardOf(data)]
	outs := sw.ProcessFrame(tsNs, inPort, data)
	ss.forwardDigests(sw)
	return outs
}

// ProcessPacket is ProcessFrame for already-decoded packets.
func (ss *ShardedSwitch) ProcessPacket(tsNs uint64, inPort uint16, pkt *packet.Packet) []FrameOut {
	sw := ss.shards[ss.ShardOfPacket(pkt)]
	outs := sw.ProcessPacket(tsNs, inPort, pkt)
	ss.forwardDigests(sw)
	return outs
}

// ProcessBatch partitions the batch by flow hash, runs all shards
// concurrently, and reduces the results in shard-index order — digests
// forwarded first, then output frames handed to emit (which therefore runs
// on the caller's goroutine only). Each emitted frame's Data is valid only
// during its emit call. emit may be nil to process for side effects only.
func (ss *ShardedSwitch) ProcessBatch(batch []FrameIn, emit func(FrameOut)) {
	if ss.closed {
		panic("p4: ProcessBatch on a closed ShardedSwitch")
	}
	n := len(ss.shards)
	for i := 0; i < n; i++ {
		ss.parts[i] = ss.parts[i][:0]
		ss.outs[i].refs = ss.outs[i].refs[:0]
		ss.outs[i].bytes = ss.outs[i].bytes[:0]
	}
	for i := range batch {
		s := shardIndex(FlowKey(batch[i].Data), n)
		ss.parts[s] = append(ss.parts[s], batch[i])
	}
	ss.batchSeq++
	for i := 0; i < n; i++ {
		if len(ss.parts[i]) == 0 {
			continue
		}
		ss.done.Add(1)
		for !ss.rings[i].TryPush(ring.Desc{Seq: ss.batchSeq, N: uint32(len(ss.parts[i]))}) {
			runtime.Gosched() // unreachable under the one-batch-in-flight contract
		}
		ss.parkers[i].Unpark()
	}
	ss.done.Wait()
	for i := 0; i < n; i++ {
		ss.forwardDigests(ss.shards[i])
		if emit != nil {
			buf := ss.outs[i]
			for _, r := range buf.refs {
				emit(FrameOut{Port: r.port, Data: buf.bytes[r.off:r.end]})
			}
		}
	}
}

// forwardDigests drains one shard's mailbox into the merged mailbox without
// blocking; digests lost to a full merged mailbox are counted like the data
// plane counts drops on a full shard mailbox.
func (ss *ShardedSwitch) forwardDigests(sw *Switch) {
	for {
		select {
		case d := <-sw.digests:
			if ss.sink != nil {
				ss.sink(d)
				continue
			}
			select {
			case ss.digests <- d:
			default:
				ss.digestDrops.Add(1)
			}
		default:
			return
		}
	}
}

// Stats sums the shard counters; DigestDrops additionally includes digests
// lost in forwarding to the merged mailbox.
func (ss *ShardedSwitch) Stats() Stats {
	var total Stats
	for _, sw := range ss.shards {
		s := sw.Stats()
		total.PktsIn += s.PktsIn
		total.PktsOut += s.PktsOut
		total.Dropped += s.Dropped
		total.ParseErrors += s.ParseErrors
		total.RuntimeErrors += s.RuntimeErrors
		total.DigestDrops += s.DigestDrops
		total.Recirculated += s.Recirculated
	}
	total.DigestDrops += ss.digestDrops.Load()
	return total
}

// MergedSnapshot combines the shards' register state into one snapshot as if
// a single switch had seen all the traffic: MergeSum register cells add
// (masked to the declared width), MergeDerived registers read as zero —
// their values are replica-local derivations that consumers recompute from
// the merged sums (stat4p4.CanonicalizeSnapshot does exactly that for
// emitted Stat4 programs). Table entries are shard 0's, under the contract
// that the control plane drives all shards identically.
func (ss *ShardedSwitch) MergedSnapshot() *Snapshot {
	snap := ss.shards[0].Snapshot()
	for name, cells := range snap.Registers {
		def, _ := ss.prog.register(name)
		if def.Merge == MergeDerived {
			for i := range cells {
				cells[i] = 0
			}
			continue
		}
		mask := widthMask(def.Width)
		for _, sw := range ss.shards[1:] {
			other := sw.regs[name]
			other.mu.RLock()
			for i := range cells {
				cells[i] = (cells[i] + other.cells[i]) & mask
			}
			other.mu.RUnlock()
		}
	}
	return snap
}
