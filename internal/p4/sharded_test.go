package p4

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"reflect"
	"runtime"
	"testing"
	"time"

	"stat4/internal/packet"
)

// buildShardableProgram is the differential workload for the sharded tests:
// it hashes the IPv4 destination into a 64-cell counter register, increments
// it, digests (idx, count) once a counter crosses a threshold, and reflects
// every frame to its ingress port. All of its state is additive (MergeSum),
// so a merged snapshot must be byte-identical to a serial switch's.
func buildShardableProgram() (*Program, StdFields) {
	p := NewProgram("test-sharded")
	std := DeclareStdFields(p)
	idx := p.AddField("meta.idx", 32)
	tmp := p.AddField("meta.tmp", 64)

	p.AddRegister("counters", 64, 64)

	p.AddAction(NewAction("count", 0,
		Hash(idx, 3, F(std.IPv4Dst), 63),
		RegRead(tmp, "counters", F(idx)),
		Add(tmp, F(tmp), C(1)),
		RegWrite("counters", F(idx), F(tmp)),
	))
	p.AddAction(NewAction("alert", 0, EmitDigest(7, idx, tmp)))
	p.AddAction(NewAction("reflect", 0, SetEgress(F(std.InPort))))

	p.Control = []Stmt{
		If(Cond{A: F(std.IPv4Valid), Op: CmpEq, B: C(1)},
			Call("count"),
			If(Cond{A: F(tmp), Op: CmpGt, B: C(3)},
				Call("alert"),
			),
		),
		Call("reflect"),
	}
	return p, std
}

// savedOut is a retained copy of an emitted frame.
type savedOut struct {
	Port uint16
	Data []byte
}

func collectOuts(dst *[]savedOut) func(FrameOut) {
	return func(o FrameOut) {
		*dst = append(*dst, savedOut{Port: o.Port, Data: append([]byte(nil), o.Data...)})
	}
}

func drainDigestChan(ch <-chan Digest) []Digest {
	var ds []Digest
	for {
		select {
		case d := <-ch:
			ds = append(ds, d)
		default:
			return ds
		}
	}
}

// framesFromBytes decodes a fuzz byte string into a deterministic sequence
// of UDP frames (7 bytes each: dst octets, source low octet, ports).
func framesFromBytes(data []byte) []FrameIn {
	var batch []FrameIn
	for i := 0; i+7 <= len(data); i += 7 {
		b := data[i : i+7]
		dst := packet.ParseIP4(10, b[0], b[1], b[2])
		src := packet.ParseIP4(192, 0, 2, b[3])
		sport := binary.BigEndian.Uint16(b[4:6])
		frame := packet.NewUDPFrame(src, dst, sport, uint16(b[6]), int(b[6]&15)).Serialize()
		batch = append(batch, FrameIn{TsNs: uint64(i) * 100, Port: uint16(b[0] & 3), Data: frame})
	}
	return batch
}

// checkShardEquivalence is the differential harness shared by the table
// tests and FuzzShardEquivalence: it replays the same frame sequence through
//
//	(a) one serial switch (the reference),
//	(b) a ShardedSwitch with n shards, batched, and
//	(c) n independent serial switches, each fed shard i's partition —
//	    the definition of what the concurrent fan-out must reproduce,
//
// and asserts (b)'s outputs and digests are byte-identical to (c)'s
// concatenated in shard-index order, and (b)'s merged snapshot and summed
// stats are byte-identical to (a)'s.
func checkShardEquivalence(t *testing.T, frames []FrameIn, n, batchSize int) {
	t.Helper()
	prog, std := buildShardableProgram()

	serial := mustSwitch(t, prog, std)
	ss, err := NewShardedSwitch(prog, std, n, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()
	replicas := make([]*Switch, n)
	for i := range replicas {
		replicas[i] = mustSwitch(t, prog, std)
	}

	for start := 0; start < len(frames); start += batchSize {
		end := start + batchSize
		if end > len(frames) {
			end = len(frames)
		}
		batch := frames[start:end]

		var serialOuts []savedOut
		serial.ProcessBatch(batch, collectOuts(&serialOuts))
		drainDigestChan(serial.Digests())

		var shardedOuts []savedOut
		ss.ProcessBatch(batch, collectOuts(&shardedOuts))
		shardedDigests := drainDigestChan(ss.Digests())

		// Reference reduction: each shard's partition replayed serially on
		// its own replica, results concatenated in shard-index order.
		var wantOuts []savedOut
		var wantDigests []Digest
		for i := 0; i < n; i++ {
			for _, f := range batch {
				if ss.ShardOf(f.Data) != i {
					continue
				}
				replicas[i].ProcessBatch([]FrameIn{f}, collectOuts(&wantOuts))
			}
			wantDigests = append(wantDigests, drainDigestChan(replicas[i].Digests())...)
		}

		if len(shardedOuts) != len(wantOuts) {
			t.Fatalf("batch at %d: sharded emitted %d frames, per-shard serial %d", start, len(shardedOuts), len(wantOuts))
		}
		for i := range wantOuts {
			if shardedOuts[i].Port != wantOuts[i].Port || !bytes.Equal(shardedOuts[i].Data, wantOuts[i].Data) {
				t.Fatalf("batch at %d: output %d differs", start, i)
			}
		}
		if !reflect.DeepEqual(shardedDigests, wantDigests) {
			t.Fatalf("batch at %d: digests differ: sharded %v, want %v", start, shardedDigests, wantDigests)
		}
		// The serial reference forwards every frame exactly once regardless
		// of register state, so output counts match it too. (Its digest
		// stream legitimately differs: the alert predicate reads counters
		// that sharding splits, so a sharded deployment alerts per shard —
		// the per-shard replay above is the digest reference.)
		if len(serialOuts) != len(shardedOuts) {
			t.Fatalf("batch at %d: sharded emitted %d frames, serial %d", start, len(shardedOuts), len(serialOuts))
		}
	}

	merged := ss.MergedSnapshot()
	want := serial.Snapshot()
	if !reflect.DeepEqual(merged.Registers, want.Registers) {
		t.Fatalf("merged registers differ from serial:\nmerged %v\nserial %v", merged.Registers, want.Registers)
	}
	sStats, gStats := serial.Stats(), ss.Stats()
	if sStats != gStats {
		t.Fatalf("summed sharded stats %+v differ from serial %+v", gStats, sStats)
	}
	// Per-shard state must equal the matching replica's, proving the
	// concurrent fan-out added nothing over serial per-partition execution.
	for i := 0; i < n; i++ {
		if !reflect.DeepEqual(ss.Shard(i).Snapshot().Registers, replicas[i].Snapshot().Registers) {
			t.Fatalf("shard %d registers differ from its serial replica", i)
		}
	}
}

func TestShardedMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	data := make([]byte, 7*600)
	rng.Read(data)
	frames := framesFromBytes(data)
	for _, n := range []int{1, 2, 3, 4, 8} {
		checkShardEquivalence(t, frames, n, 64)
	}
}

// FuzzShardEquivalence mirrors FuzzDifferential for the sharded layer:
// arbitrary packet batches and shard counts, with the ShardedSwitch's
// ordered reduction and merged snapshot pinned byte-identical to serial
// per-partition execution of the compiled path.
func FuzzShardEquivalence(f *testing.F) {
	f.Add(uint8(4), []byte("seed-corpus-entry-with-some-length-to-it"))
	f.Add(uint8(1), []byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13})
	f.Add(uint8(255), bytes.Repeat([]byte{9, 12, 200}, 40))
	f.Fuzz(func(t *testing.T, shardsByte uint8, data []byte) {
		n := 1 + int(shardsByte)%8
		frames := framesFromBytes(data)
		if len(frames) == 0 {
			t.Skip()
		}
		checkShardEquivalence(t, frames, n, 37)
	})
}

func TestFlowKeyMatchesPacketFlowKey(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var pkts []*packet.Packet
	for i := 0; i < 200; i++ {
		dst := packet.ParseIP4(10, byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256)))
		src := packet.ParseIP4(192, 0, 2, byte(rng.Intn(256)))
		if rng.Intn(2) == 0 {
			pkts = append(pkts, packet.NewUDPFrame(src, dst, uint16(rng.Intn(65536)), uint16(rng.Intn(65536)), rng.Intn(40)))
		} else {
			pkts = append(pkts, packet.NewTCPFrame(src, dst, uint16(rng.Intn(65536)), uint16(rng.Intn(65536)), packet.FlagSYN))
		}
	}
	pkts = append(pkts, packet.NewEchoFrame(packet.MAC{1, 2, 3}, packet.MAC{4, 5, 6}, -17))
	for i, pkt := range pkts {
		frame := pkt.Serialize()
		parsed, err := packet.Parse(frame)
		if err != nil {
			t.Fatalf("packet %d: %v", i, err)
		}
		if FlowKey(frame) != PacketFlowKey(parsed) {
			t.Fatalf("packet %d: FlowKey %x != PacketFlowKey %x", i, FlowKey(frame), PacketFlowKey(parsed))
		}
	}
	// Truncated and non-IPv4 frames still get deterministic keys.
	for _, raw := range [][]byte{nil, {1}, bytes.Repeat([]byte{0xff}, 13), bytes.Repeat([]byte{3}, 20)} {
		if FlowKey(raw) != FlowKey(append([]byte(nil), raw...)) {
			t.Fatal("FlowKey not deterministic on odd input")
		}
	}
}

func TestShardOfFlowAffinityAndSpread(t *testing.T) {
	prog, std := buildShardableProgram()
	ss, err := NewShardedSwitch(prog, std, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()
	seen := make(map[int]int)
	for i := 0; i < 1024; i++ {
		dst := packet.ParseIP4(10, byte(i>>8), byte(i), 1)
		frame := packet.NewUDPFrame(packet.ParseIP4(192, 0, 2, 1), dst, 4000, 80, 0).Serialize()
		s := ss.ShardOf(frame)
		if s < 0 || s >= 4 {
			t.Fatalf("shard %d out of range", s)
		}
		if again := ss.ShardOf(frame); again != s {
			t.Fatalf("flow moved shards: %d then %d", s, again)
		}
		seen[s]++
	}
	for s := 0; s < 4; s++ {
		if seen[s] == 0 {
			t.Fatalf("shard %d received no flows out of 1024", s)
		}
	}
}

func TestShardedProcessFrameAndPacket(t *testing.T) {
	prog, std := buildShardableProgram()
	ss, err := NewShardedSwitch(prog, std, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()
	serial := mustSwitch(t, prog, std)

	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 500; i++ {
		dst := packet.ParseIP4(10, 0, byte(rng.Intn(8)), byte(rng.Intn(4)))
		pkt := packet.NewUDPFrame(packet.ParseIP4(192, 0, 2, 1), dst, 1000, 80, 0)
		frame := pkt.Serialize()
		if ss.ShardOf(frame) != ss.ShardOfPacket(pkt) {
			t.Fatal("raw and decoded dispatch disagree")
		}
		var out []FrameOut
		if i%2 == 0 {
			out = ss.ProcessFrame(uint64(i), 2, frame)
		} else {
			out = ss.ProcessPacket(uint64(i), 2, pkt)
		}
		wantOut := serial.ProcessFrame(uint64(i), 2, frame)
		if len(out) != len(wantOut) || out[0].Port != wantOut[0].Port {
			t.Fatalf("frame %d: serial-dispatch output differs", i)
		}
	}
	drainDigestChan(ss.Digests())
	drainDigestChan(serial.Digests())
	if ss.Stats().PktsIn != 500 || ss.Stats().PktsIn != serial.Stats().PktsIn {
		t.Fatalf("sharded stats %+v, serial %+v", ss.Stats(), serial.Stats())
	}
	if !reflect.DeepEqual(ss.MergedSnapshot().Registers, serial.Snapshot().Registers) {
		t.Fatal("merged registers differ from serial after serial-dispatch traffic")
	}
}

func TestMergedSnapshotZeroesDerived(t *testing.T) {
	prog, std := buildShardableProgram()
	prog.AddRegister("scratch.sd", 4, 64)
	prog.SetRegisterMerge("scratch.sd", MergeDerived)
	ss, err := NewShardedSwitch(prog, std, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()
	for i := 0; i < 2; i++ {
		r, err := ss.Shard(i).Register("scratch.sd")
		if err != nil {
			t.Fatal(err)
		}
		if err := r.WriteCell(1, uint64(100+i)); err != nil {
			t.Fatal(err)
		}
	}
	merged := ss.MergedSnapshot()
	for i, v := range merged.Registers["scratch.sd"] {
		if v != 0 {
			t.Fatalf("derived register cell %d = %d in merged snapshot, want 0", i, v)
		}
	}
	// The per-shard values themselves are untouched.
	if got := ss.Shard(0).Snapshot().Registers["scratch.sd"][1]; got != 100 {
		t.Fatalf("shard 0 derived cell = %d, want 100", got)
	}
}

func TestNewShardedSwitchRejectsBadCount(t *testing.T) {
	prog, std := buildShardableProgram()
	if _, err := NewShardedSwitch(prog, std, 0, 0); err == nil {
		t.Fatal("expected error for 0 shards")
	}
}

// TestShardedCloseJoinsWorkers pins that Close parks and joins the shard
// worker goroutines: after Close returns, the goroutine count is back to its
// pre-construction level (a regression test for worker leaks), Close is
// idempotent, and a late ProcessBatch fails fast instead of hanging on
// workers that no longer exist.
func TestShardedCloseJoinsWorkers(t *testing.T) {
	prog, std := buildShardableProgram()
	baseline := runtime.NumGoroutine()
	ss, err := NewShardedSwitch(prog, std, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	if g := runtime.NumGoroutine(); g < baseline+8 {
		t.Fatalf("expected %d+8 goroutines with workers running, have %d", baseline, g)
	}
	// Run a batch so some workers have cycled through the pop/park loop, and
	// give them time to park — Close must wake parked workers too.
	ss.ProcessBatch(framesFromBytes(bytes.Repeat([]byte{1, 2, 3, 4, 5, 6, 7}, 32)), nil)
	for i := 0; i < 100; i++ {
		runtime.Gosched()
	}
	ss.Close()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines did not return to baseline %d after Close: %d",
				baseline, runtime.NumGoroutine())
		}
		runtime.Gosched()
	}
	ss.Close() // idempotent

	defer func() {
		if recover() == nil {
			t.Fatal("ProcessBatch after Close did not panic")
		}
	}()
	ss.ProcessBatch(framesFromBytes([]byte{1, 2, 3, 4, 5, 6, 7}), nil)
}
