package p4

import (
	"strings"
	"testing"

	"stat4/internal/packet"
)

// buildRecircProgram models the probabilistic-recirculation heavy-hitter
// shape in miniature: the main pass samples (dst & 3 == 0 stands in for the
// 2^-k hash gate) and raises the recirculation flag; the extra pass promotes
// by bumping a counter cell chosen from metadata the main pass computed —
// exercising PHV state carried across the trip.
func buildRecircProgram() (*Program, StdFields) {
	p := NewProgram("recirc-sample")
	std := DeclareStdFields(p)
	flag := p.AddField("meta.recirc", 1)
	gate := p.AddField("meta.gate", 8)
	slot := p.AddField("meta.slot", 8)
	tmp := p.AddField("meta.tmp", 64)

	p.AddRegister("promoted", 64, 16)

	p.AddAction(NewAction("sample", 0,
		And(gate, F(std.IPv4Dst), C(3)),
		And(slot, F(std.IPv4Dst), C(15)),
	))
	p.AddAction(NewAction("mark", 0, Mov(flag, C(1))))
	p.AddAction(NewAction("promote", 0,
		RegRead(tmp, "promoted", F(slot)),
		Add(tmp, F(tmp), C(1)),
		RegWrite("promoted", F(slot), F(tmp)),
	))
	p.AddAction(NewAction("reflect", 0, SetEgress(F(std.InPort))))

	p.Control = []Stmt{
		Call("sample"),
		If(Cond{A: F(gate), Op: CmpEq, B: C(0)}, Call("mark")),
		Call("reflect"),
	}
	p.SetRecirc(flag, []Stmt{Call("promote")})
	return p, std
}

func TestRecircPromotesSampledPackets(t *testing.T) {
	p, std := buildRecircProgram()
	sw := mustSwitch(t, p, std)

	// dst low byte 4 → gate 0 (recirculates into slot 4); 5 and 6 → no trip.
	for i := 0; i < 3; i++ {
		sw.ProcessFrame(uint64(i), 1, udpTo(packet.ParseIP4(10, 0, 0, 4)))
	}
	sw.ProcessFrame(3, 1, udpTo(packet.ParseIP4(10, 0, 0, 5)))
	sw.ProcessFrame(4, 1, udpTo(packet.ParseIP4(10, 0, 0, 6)))

	reg, err := sw.Register("promoted")
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := reg.Read(4); v != 3 {
		t.Fatalf("promoted[4] = %d, want 3", v)
	}
	for _, cell := range []int{5, 6} {
		if v, _ := reg.Read(cell); v != 0 {
			t.Fatalf("promoted[%d] = %d, want 0 (gate should not fire)", cell, v)
		}
	}
	st := sw.Stats()
	if st.Recirculated != 3 {
		t.Fatalf("Recirculated = %d, want 3", st.Recirculated)
	}
	if st.PktsIn != 5 || st.PktsOut != 5 {
		t.Fatalf("stats = %+v: recirculation must not double-count packets", st)
	}
}

// TestRecircTreeCompiledParity replays one stream through the reference tree
// interpreter and the compiled plan and demands identical register state and
// counters — the recirc pass is covered by the same differential discipline
// as the main control flow.
func TestRecircTreeCompiledParity(t *testing.T) {
	mk := func(mode ExecMode) *Switch {
		p, std := buildRecircProgram()
		sw := mustSwitch(t, p, std)
		sw.SetExecMode(mode)
		return sw
	}
	tree, comp := mk(ExecTree), mk(ExecCompiled)

	for i := 0; i < 64; i++ {
		f := udpTo(packet.ParseIP4(10, 0, byte(i*7), byte(i*13)))
		tree.ProcessFrame(uint64(i), 1, f)
		comp.ProcessFrame(uint64(i), 1, f)
	}

	tr, _ := tree.Register("promoted")
	cr, _ := comp.Register("promoted")
	for cell := 0; cell < 16; cell++ {
		tv, _ := tr.Read(cell)
		cv, _ := cr.Read(cell)
		if tv != cv {
			t.Fatalf("promoted[%d]: tree %d, compiled %d", cell, tv, cv)
		}
	}
	ts, cs := tree.Stats(), comp.Stats()
	if ts != cs {
		t.Fatalf("stats diverge: tree %+v, compiled %+v", ts, cs)
	}
	if ts.Recirculated == 0 {
		t.Fatal("stream never recirculated; parity test is vacuous")
	}
}

// TestRecircRunsAtMostOnce pins the structural bound: a recirc pass that
// re-raises the flag does not earn another trip, because the flag is cleared
// before the pass runs and only checked after the main pass.
func TestRecircRunsAtMostOnce(t *testing.T) {
	p := NewProgram("recirc-greedy")
	std := DeclareStdFields(p)
	flag := p.AddField("meta.recirc", 1)
	tmp := p.AddField("meta.tmp", 64)
	p.AddRegister("trips", 64, 1)
	p.AddAction(NewAction("want", 0, Mov(flag, C(1))))
	p.AddAction(NewAction("again", 0,
		RegRead(tmp, "trips", C(0)),
		Add(tmp, F(tmp), C(1)),
		RegWrite("trips", C(0), F(tmp)),
		Mov(flag, C(1)), // greedy: ask for another pass
	))
	p.Control = []Stmt{Call("want")}
	p.SetRecirc(flag, []Stmt{Call("again")})

	for _, mode := range []ExecMode{ExecCompiled, ExecTree} {
		sw := mustSwitch(t, p, std)
		sw.SetExecMode(mode)
		sw.ProcessFrame(0, 1, udpTo(packet.ParseIP4(10, 0, 0, 1)))
		reg, _ := sw.Register("trips")
		if v, _ := reg.Read(0); v != 1 {
			t.Fatalf("mode %v: trips = %d, want exactly 1", mode, v)
		}
		if st := sw.Stats(); st.Recirculated != 1 {
			t.Fatalf("mode %v: Recirculated = %d, want 1", mode, st.Recirculated)
		}
	}
}

func TestRecircValidation(t *testing.T) {
	t.Run("empty pass panics", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("SetRecirc(nil) did not panic")
			}
		}()
		p := NewProgram("x")
		p.SetRecirc(0, nil)
	})
	t.Run("bypassing SetRecirc fails validation", func(t *testing.T) {
		p := NewProgram("x")
		DeclareStdFields(p)
		p.AddAction(NewAction("noop", 0))
		p.Control = []Stmt{Call("noop")}
		p.RecircControl = []Stmt{Call("noop")} // not via SetRecirc
		err := p.Validate()
		if err == nil || !strings.Contains(err.Error(), "SetRecirc") {
			t.Fatalf("err = %v, want SetRecirc complaint", err)
		}
	})
	t.Run("undeclared flag field", func(t *testing.T) {
		p := NewProgram("x")
		DeclareStdFields(p)
		p.AddAction(NewAction("noop", 0))
		p.Control = []Stmt{Call("noop")}
		p.SetRecirc(FieldID(999), []Stmt{Call("noop")})
		err := p.Validate()
		if err == nil || !strings.Contains(err.Error(), "undeclared field") {
			t.Fatalf("err = %v, want undeclared-field complaint", err)
		}
	})
	t.Run("broken recirc statements caught", func(t *testing.T) {
		p := NewProgram("x")
		std := DeclareStdFields(p)
		flag := p.AddField("meta.recirc", 1)
		_ = std
		p.AddAction(NewAction("noop", 0))
		p.Control = []Stmt{Call("noop")}
		p.SetRecirc(flag, []Stmt{Call("missing_action")})
		if err := p.Validate(); err == nil {
			t.Fatal("recirc pass calling an undeclared action validated")
		}
	})
}

// TestRecircStageFloor checks the allocator charges the extra pass after the
// main placement: the recirc pass's first stage is the main pass's depth, so
// the total depth a target must budget is main + recirc.
func TestRecircStageFloor(t *testing.T) {
	p, _ := buildRecircProgram()
	rep, err := AllocateStages(p, DefaultTargetModel())
	if err != nil {
		t.Fatal(err)
	}
	if rep.RecircFloor == 0 {
		t.Fatal("RecircFloor = 0 for a recirculating program")
	}
	if rep.StagesUsed <= rep.RecircFloor {
		t.Fatalf("StagesUsed %d <= RecircFloor %d: recirc pass placed nothing",
			rep.StagesUsed, rep.RecircFloor)
	}
	if !rep.Fit {
		t.Fatalf("program should fit the default model: %v", rep.Violations)
	}

	// The same program without the recirc pass is strictly shallower.
	q, _ := buildRecircProgram()
	q.RecircControl, q.hasRecirc = nil, false
	base, err := AllocateStages(q, DefaultTargetModel())
	if err != nil {
		t.Fatal(err)
	}
	if base.RecircFloor != 0 {
		t.Fatalf("RecircFloor = %d for a program without recirculation", base.RecircFloor)
	}
	if base.StagesUsed != rep.RecircFloor {
		t.Fatalf("main-only depth %d != RecircFloor %d", base.StagesUsed, rep.RecircFloor)
	}
}
