package p4

// ResourceReport is the static resource and dependency analysis of a
// program, the simulator's counterpart of the Section 4 resource-consumption
// evaluation. Byte figures count declared state (registers) and table
// capacity; the dependency figures bound how the program maps onto pipeline
// stages, which is what limits deployability on hardware targets.
type ResourceReport struct {
	Name string

	NumFields    int
	NumActions   int
	NumTables    int
	NumRegisters int

	RegisterCells int // total register cells
	RegisterBytes int // total register bytes (cells × cell width)
	TableBytes    int // capacity × per-entry bytes, summed over tables
	TotalBytes    int // RegisterBytes + TableBytes

	// MatchRuleDependencies is the maximum number of earlier match-action
	// rules whose action results feed a later rule's match keys on any
	// packet path — the paper reports "at most one dependency between
	// match-action rules" for the case-study program.
	MatchRuleDependencies int

	// LongestDepChain is the longest sequential def-use chain through the
	// per-packet execution: each op (or table lookup) adds one step on top
	// of the deepest value it consumes. The paper reports a 12-step chain
	// for the circular-buffer override. A chain must fit the target's
	// pipeline depth ("most commercial targets support more than 10
	// pipeline stages").
	LongestDepChain int
}

// AnalyzeProgram computes the resource report.
func AnalyzeProgram(p *Program) ResourceReport {
	r := ResourceReport{
		Name:         p.Name,
		NumFields:    len(p.Fields),
		NumActions:   len(p.Actions),
		NumTables:    len(p.Tables),
		NumRegisters: len(p.Registers),
	}
	for _, reg := range p.Registers {
		r.RegisterCells += reg.Cells
		r.RegisterBytes += reg.Bytes()
	}
	for _, t := range p.Tables {
		r.TableBytes += t.MaxEntries * entryBytes(p, t)
	}
	r.TotalBytes = r.RegisterBytes + r.TableBytes
	r.MatchRuleDependencies = matchRuleDependencies(p)
	r.LongestDepChain = longestDepChain(p)
	return r
}

// entryBytes estimates the storage of one entry: match data per key (value
// plus mask for ternary), a 4-byte action selector, and 4 bytes per action
// parameter of the widest bindable action.
func entryBytes(p *Program, t *TableDef) int {
	b := 0
	for _, k := range t.Keys {
		kb := int((p.Fields[k.Field].Width + 7) / 8)
		b += kb
		if k.Kind == MatchTernary {
			b += kb // the mask
		}
	}
	b += 4 // action selector
	maxParams := 0
	for _, an := range t.ActionNames {
		if a, ok := p.action(an); ok && a.NumParams > maxParams {
			maxParams = a.NumParams
		}
	}
	return b + 4*maxParams
}

// actionWrites returns the set of fields an action may write.
func actionWrites(a *Action) map[FieldID]bool {
	w := make(map[FieldID]bool)
	for _, op := range a.Ops {
		switch op.Code {
		case OpMov, OpAdd, OpSub, OpMul, OpSatAdd, OpSatSub, OpAnd, OpOr, OpXor, OpNot,
			OpShl, OpShr, OpRegRead, OpHash:
			w[op.Dst.Field] = true
		}
	}
	return w
}

// appliedTables returns table names in pre-order over the control flow.
func appliedTables(stmts []Stmt, out *[]string) {
	for _, s := range stmts {
		switch st := s.(type) {
		case ApplyStmt:
			*out = append(*out, st.Table)
		case IfStmt:
			appliedTables(st.Then, out)
			appliedTables(st.Else, out)
		}
	}
}

// matchRuleDependencies computes, for each applied table, how many earlier
// applied tables can write one of its match key fields, and returns the
// maximum.
func matchRuleDependencies(p *Program) int {
	var order []string
	appliedTables(p.Control, &order)
	writesOf := func(name string) map[FieldID]bool {
		t, ok := p.table(name)
		if !ok {
			return nil
		}
		w := make(map[FieldID]bool)
		names := t.ActionNames
		if t.DefaultAction != "" {
			names = append(append([]string(nil), names...), t.DefaultAction)
		}
		for _, an := range names {
			if a, ok := p.action(an); ok {
				for f := range actionWrites(a) {
					w[f] = true
				}
			}
		}
		return w
	}
	maxDeps := 0
	for i, name := range order {
		t, ok := p.table(name)
		if !ok {
			continue
		}
		deps := 0
		for j := 0; j < i; j++ {
			w := writesOf(order[j])
			for _, k := range t.Keys {
				if w[k.Field] {
					deps++
					break
				}
			}
		}
		if deps > maxDeps {
			maxDeps = deps
		}
	}
	return maxDeps
}

// depState carries the running def-use depth of every field and register
// during the chain analysis.
type depState struct {
	field []int
	reg   map[string]int
	max   int
}

func (d *depState) clone() *depState {
	c := &depState{field: append([]int(nil), d.field...), reg: make(map[string]int, len(d.reg)), max: d.max}
	for k, v := range d.reg {
		c.reg[k] = v
	}
	return c
}

func (d *depState) merge(o *depState) {
	for i := range d.field {
		if o.field[i] > d.field[i] {
			d.field[i] = o.field[i]
		}
	}
	for k, v := range o.reg {
		if v > d.reg[k] {
			d.reg[k] = v
		}
	}
	if o.max > d.max {
		d.max = o.max
	}
}

func (d *depState) bump(v int) {
	if v > d.max {
		d.max = v
	}
}

// longestDepChain walks the control flow once, propagating def-use depths and
// merging branches pointwise, which upper-bounds the longest chain on any
// packet path in linear time.
func longestDepChain(p *Program) int {
	d := &depState{field: make([]int, len(p.Fields)), reg: make(map[string]int)}
	chainStmts(p, p.Control, d, 0)
	return d.max
}

func refDepth(d *depState, r Ref) int {
	if r.Kind == RefField {
		return d.field[r.Field]
	}
	return 0
}

func chainStmts(p *Program, stmts []Stmt, d *depState, ctrl int) {
	for _, s := range stmts {
		switch st := s.(type) {
		case ApplyStmt:
			t, ok := p.table(st.Table)
			if !ok {
				continue
			}
			keyDepth := ctrl
			for _, k := range t.Keys {
				if d.field[k.Field] > keyDepth {
					keyDepth = d.field[k.Field]
				}
			}
			lookup := keyDepth + 1
			d.bump(lookup)
			names := t.ActionNames
			if t.DefaultAction != "" {
				names = append(append([]string(nil), names...), t.DefaultAction)
			}
			merged := d.clone()
			for _, an := range names {
				a, ok := p.action(an)
				if !ok {
					continue
				}
				branch := d.clone()
				chainAction(p, a, branch, lookup)
				merged.merge(branch)
			}
			*d = *merged
		case CallStmt:
			if a, ok := p.action(st.Action); ok {
				chainAction(p, a, d, ctrl)
			}
		case IfStmt:
			condDepth := ctrl
			if v := refDepth(d, st.Cond.A); v > condDepth {
				condDepth = v
			}
			if v := refDepth(d, st.Cond.B); v > condDepth {
				condDepth = v
			}
			condDepth++ // evaluating the comparison is a step
			d.bump(condDepth)
			thenD := d.clone()
			chainStmts(p, st.Then, thenD, condDepth)
			elseD := d.clone()
			chainStmts(p, st.Else, elseD, condDepth)
			thenD.merge(elseD)
			*d = *thenD
		}
	}
}

func chainAction(p *Program, a *Action, d *depState, ctrl int) {
	for _, op := range a.Ops {
		in := ctrl
		take := func(r Ref) {
			if v := refDepth(d, r); v > in {
				in = v
			}
		}
		switch op.Code {
		case OpMov, OpNot:
			take(op.A)
			d.field[op.Dst.Field] = in + 1
			d.bump(in + 1)
		case OpAdd, OpSub, OpMul, OpSatAdd, OpSatSub, OpAnd, OpOr, OpXor, OpShl, OpShr, OpHash:
			take(op.A)
			take(op.B)
			d.field[op.Dst.Field] = in + 1
			d.bump(in + 1)
		case OpRegRead:
			take(op.A)
			if v := d.reg[op.Reg]; v > in {
				in = v
			}
			d.field[op.Dst.Field] = in + 1
			d.bump(in + 1)
		case OpRegWrite:
			take(op.A)
			take(op.B)
			if v := d.reg[op.Reg]; v > in {
				in = v
			}
			d.reg[op.Reg] = in + 1
			d.bump(in + 1)
		case OpDigest:
			for _, f := range op.Fields {
				if v := d.field[f]; v > in {
					in = v
				}
			}
			d.bump(in + 1)
		case OpSetEgress, OpDrop:
			take(op.A)
			d.bump(in + 1)
		}
	}
}
