package p4

import "fmt"

// Snapshot is a copy of a switch's mutable state: every register array and
// every table's installed entries. It supports checkpoint/restore of
// experiments (e.g. rewinding to the moment before a spike) and state
// migration between switch instances running the same program.
type Snapshot struct {
	Registers map[string][]uint64
	Entries   map[string][]Entry
}

// Snapshot captures the switch's current state. It is safe to call while the
// data plane runs; each register and table is copied atomically (the whole
// snapshot is not a single atomic cut, like any control-plane bulk read).
func (sw *Switch) Snapshot() *Snapshot {
	s := &Snapshot{
		Registers: make(map[string][]uint64, len(sw.regs)),
		Entries:   make(map[string][]Entry, len(sw.tables)),
	}
	for name, r := range sw.regs {
		s.Registers[name] = r.Snapshot()
	}
	for name, t := range sw.tables {
		t.mu.RLock()
		es := make([]Entry, 0, len(t.entries))
		for _, e := range t.entries {
			c := *e
			c.Match = append([]MatchValue(nil), e.Match...)
			c.Args = append([]uint64(nil), e.Args...)
			c.act = nil // snapshots are inert data; Restore rebinds
			es = append(es, c)
		}
		t.mu.RUnlock()
		s.Entries[name] = es
	}
	return s
}

// Restore loads a snapshot into the switch. The snapshot must come from a
// switch running a program with identical registers and tables; mismatched
// shapes are rejected before any state is touched. Entry IDs are preserved,
// so handles held by a controller stay valid.
func (sw *Switch) Restore(s *Snapshot) error {
	// Validate first: all-or-nothing.
	for name, cells := range s.Registers {
		r, ok := sw.regs[name]
		if !ok {
			return fmt.Errorf("p4: snapshot register %q not in program", name)
		}
		if len(cells) != r.def.Cells {
			return fmt.Errorf("p4: snapshot register %q has %d cells, program %d",
				name, len(cells), r.def.Cells)
		}
	}
	for name, entries := range s.Entries {
		t, ok := sw.tables[name]
		if !ok {
			return fmt.Errorf("p4: snapshot table %q not in program", name)
		}
		if len(entries) > t.def.MaxEntries {
			return fmt.Errorf("p4: snapshot table %q has %d entries, capacity %d",
				name, len(entries), t.def.MaxEntries)
		}
		for _, e := range entries {
			if err := t.validateEntry(e.Match, e.Action, e.Args, e.Priority); err != nil {
				return fmt.Errorf("p4: snapshot table %q entry %d: %w", name, e.ID, err)
			}
		}
	}

	for name, cells := range s.Registers {
		r := sw.regs[name]
		r.mu.Lock()
		copy(r.cells, cells)
		r.mu.Unlock()
	}
	for name, entries := range s.Entries {
		t := sw.tables[name]
		t.mu.Lock()
		t.entries = t.entries[:0]
		maxID := EntryID(0)
		for _, e := range entries {
			c := e
			c.Match = append([]MatchValue(nil), e.Match...)
			c.Args = append([]uint64(nil), e.Args...)
			// Rebind against this switch's compiled actions: the snapshot
			// may come from another instance whose resolved pointers target
			// that instance's registers.
			c.act = t.acts[c.Action]
			t.entries = append(t.entries, &c)
			if c.ID > maxID {
				maxID = c.ID
			}
		}
		if t.nextID <= maxID {
			t.nextID = maxID + 1
		}
		t.mu.Unlock()
	}
	return nil
}

// TableEntries returns copies of a table's installed entries, for
// control-plane introspection.
func (sw *Switch) TableEntries(tbl string) ([]Entry, error) {
	t, ok := sw.tables[tbl]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchTable, tbl)
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]Entry, 0, len(t.entries))
	for _, e := range t.entries {
		c := *e
		c.Match = append([]MatchValue(nil), e.Match...)
		c.Args = append([]uint64(nil), e.Args...)
		c.act = nil // introspection copies carry no execution state
		out = append(out, c)
	}
	return out, nil
}
