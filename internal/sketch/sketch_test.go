package sketch

import (
	"testing"

	"stat4/internal/netem"
	"stat4/internal/packet"
	"stat4/internal/stat4p4"
	"stat4/internal/traffic"
)

func TestPullMonitorDetectsSpike(t *testing.T) {
	const (
		intShift = 15 // ~33 µs intervals, fast test
		window   = 16
	)
	lib := stat4p4.Build(stat4p4.Options{Slots: 1, Size: 64, Stages: 1})
	rt, err := stat4p4.NewRuntime(lib)
	if err != nil {
		t.Fatal(err)
	}
	// Window bound with a huge k so the switch itself stays quiet: the
	// sketch-only architecture keeps detection in the controller.
	if _, err := rt.BindWindow(0, 0, stat4p4.AllIPv4(), intShift, window, 1<<20); err != nil {
		t.Fatal(err)
	}
	sim := netem.NewSim()
	node := netem.NewSwitchNode(sim, rt.Switch(), 100)

	onset := uint64(40) << intShift
	end := uint64(80) << intShift
	dests := []packet.IP4{packet.ParseIP4(10, 0, 0, 1)}
	load := &traffic.LoadBalanced{Dests: dests, Rate: 3e9 / float64(uint64(1)<<intShift) * 100, End: end, Seed: 1, Jitter: 0.3}
	spike := &traffic.Spike{Dest: dests[0], Rate: 4 * 3e9 / float64(uint64(1)<<intShift) * 100, Start: onset, End: end, Seed: 2, Jitter: 0.3}
	node.InjectStream(traffic.Merge(load, spike), 1)

	var detections []uint64
	mon := &PullMonitor{
		Sim: sim, RT: rt, Slot: 0, Window: window,
		Period: 1 << intShift, PerRegNs: 100, LinkDelay: 100, K: 2,
		OnDetect: func(now uint64, v uint64) { detections = append(detections, now) },
	}
	mon.Start(end)
	sim.Run()

	if mon.Pulls == 0 {
		t.Fatal("monitor never pulled")
	}
	if mon.RegistersPerPull != window+2 {
		t.Fatalf("RegistersPerPull = %d", mon.RegistersPerPull)
	}
	found := false
	for _, at := range detections {
		if at >= onset {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("spike not detected by pulling (detections: %v)", detections)
	}
}

func TestPullMonitorQuietBeforeWindowFills(t *testing.T) {
	lib := stat4p4.Build(stat4p4.Options{Slots: 1, Size: 64, Stages: 1})
	rt, err := stat4p4.NewRuntime(lib)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.BindWindow(0, 0, stat4p4.AllIPv4(), 15, 16, 1<<20); err != nil {
		t.Fatal(err)
	}
	sim := netem.NewSim()
	node := netem.NewSwitchNode(sim, rt.Switch(), 100)
	// Only 4 intervals of traffic: the window never fills.
	dests := []packet.IP4{1}
	load := &traffic.LoadBalanced{Dests: dests, Rate: 1e9, End: 4 << 15, Seed: 3}
	node.InjectStream(load, 1)
	fired := false
	mon := &PullMonitor{
		Sim: sim, RT: rt, Slot: 0, Window: 16,
		Period: 1 << 14, PerRegNs: 10, LinkDelay: 10, K: 2,
		OnDetect: func(uint64, uint64) { fired = true },
	}
	mon.Start(8 << 15)
	sim.Run()
	if fired {
		t.Fatal("detection fired on an unfilled window")
	}
}

func TestOverheadScalesWithPeriod(t *testing.T) {
	fast := &PullMonitor{Period: 1e6, Window: 100}
	slow := &PullMonitor{Period: 1e9, Window: 100}
	fast.RegistersPerPull = fast.Window + 2
	slow.RegistersPerPull = slow.Window + 2
	if fast.OverheadBytesPerSec() <= slow.OverheadBytesPerSec() {
		t.Fatal("overhead not inversely proportional to period")
	}
	ratio := fast.OverheadBytesPerSec() / slow.OverheadBytesPerSec()
	if ratio < 999 || ratio > 1001 {
		t.Fatalf("overhead ratio %.1f, want 1000", ratio)
	}
}

func TestMeanSDExcluding(t *testing.T) {
	cells := []uint64{10, 10, 10, 100}
	mean, sd := meanSDExcluding(cells, 3)
	if mean != 10 || sd != 0 {
		t.Fatalf("mean=%v sd=%v, want 10,0", mean, sd)
	}
	mean, _ = meanSDExcluding(cells, 0)
	if mean != 40 {
		t.Fatalf("mean=%v, want 40", mean)
	}
	if m, s := meanSDExcluding([]uint64{5}, 0); m != 0 || s != 0 {
		t.Fatalf("degenerate case: %v %v", m, s)
	}
}
