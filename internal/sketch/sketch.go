// Package sketch implements the sketch-only monitoring architecture of
// Figure 1b as a baseline: the data plane keeps only counters, and a
// controller pulls register snapshots on a fixed period to run the anomaly
// check itself. Pulling costs time proportional to the number of registers
// ("reading thousands of registers takes several milliseconds") plus the
// link delay, which is exactly the reactivity gap the paper's Section 1
// argues motivates in-switch detection.
package sketch

import (
	"math"

	"stat4/internal/netem"
	"stat4/internal/stat4p4"
)

// PullMonitor polls one window distribution's registers and performs the
// mean + K·σ check in the controller.
type PullMonitor struct {
	Sim  *netem.Sim
	RT   *stat4p4.Runtime
	Slot int
	// Window is the circular buffer length being monitored.
	Window int
	// Period is the pull interval in ns.
	Period uint64
	// PerRegNs is the cost of reading one register cell.
	PerRegNs uint64
	// LinkDelay is the one-way switch↔controller latency; a pull pays it
	// twice (request + response).
	LinkDelay uint64
	// K is the σ multiplier of the detection check.
	K float64
	// OnDetect fires (at controller time) for each newly completed
	// interval flagged anomalous.
	OnDetect func(now uint64, value uint64)

	lastHead  uint64
	havePrev  bool
	stopAfter uint64

	// RegistersPerPull reports the snapshot size.
	RegistersPerPull int
	// Pulls counts completed pulls.
	Pulls uint64
}

// Start schedules the periodic pull loop until the deadline.
func (m *PullMonitor) Start(deadline uint64) {
	m.stopAfter = deadline
	m.RegistersPerPull = m.Window + 2 // cells + head + n
	m.schedule()
}

func (m *PullMonitor) schedule() {
	m.Sim.After(m.Period, func() {
		if m.Sim.Now() > m.stopAfter {
			return
		}
		// The snapshot reflects switch state at request arrival; the
		// response lands after the read time plus the return link.
		m.Sim.After(m.LinkDelay, func() {
			snapshot := m.snapshot()
			cost := uint64(m.RegistersPerPull) * m.PerRegNs
			m.Sim.After(cost+m.LinkDelay, func() {
				m.analyze(snapshot)
				m.Pulls++
			})
		})
		m.schedule()
	})
}

type pullSnapshot struct {
	cells []uint64
	head  uint64
	n     uint64
}

func (m *PullMonitor) snapshot() pullSnapshot {
	cells, _ := m.RT.ReadCounters(m.Slot, m.Window)
	moms, _ := m.RT.ReadMoments(m.Slot)
	headReg, err := m.RT.Switch().Register(stat4p4.RegHead)
	var head uint64
	if err == nil {
		head, _ = headReg.Read(m.Slot)
	}
	return pullSnapshot{cells: cells, head: head, n: moms.N}
}

// analyze flags intervals completed since the previous pull that exceed the
// mean + K·σ of the rest of the window.
func (m *PullMonitor) analyze(s pullSnapshot) {
	if s.n < uint64(m.Window) {
		return // window not full yet
	}
	if !m.havePrev {
		m.havePrev = true
		m.lastHead = s.head
		return
	}
	for h := m.lastHead; h != s.head; h = (h + 1) % uint64(m.Window) {
		v := s.cells[h]
		mean, sd := meanSDExcluding(s.cells, int(h))
		if float64(v) > mean+m.K*sd {
			if m.OnDetect != nil {
				m.OnDetect(m.Sim.Now(), v)
			}
		}
	}
	m.lastHead = s.head
}

// meanSDExcluding computes mean and population σ of the cells without index
// skip.
func meanSDExcluding(cells []uint64, skip int) (mean, sd float64) {
	n := float64(len(cells) - 1)
	if n <= 0 {
		return 0, 0
	}
	var sum, sumsq float64
	for i, c := range cells {
		if i == skip {
			continue
		}
		f := float64(c)
		sum += f
		sumsq += f * f
	}
	mean = sum / n
	v := sumsq/n - mean*mean
	if v < 0 {
		v = 0
	}
	return mean, math.Sqrt(v)
}

// OverheadBytesPerSec returns the controller-channel load of the pull loop.
func (m *PullMonitor) OverheadBytesPerSec() float64 {
	return float64(m.RegistersPerPull) * 8 * 1e9 / float64(m.Period)
}
