// Package flowtable is the sparse flow-table state plane: a bounded,
// integer-only, allocation-free d-left hash table that lets a switch track
// millions of distinct flows in SRAM-model register pairs instead of
// reserving a dense counter per possible key.
//
// The paper's register arrays are sized at compile time — every trackable
// key costs dedicated memory whether it ever recurs or not. This package is
// the ROADMAP item-5 answer: a {key, epoch-stamp, count} bucket store with
//
//   - 2-left hashing: the bucket array splits into two halves, each probed
//     with its own multiply-shift hash from the switch's hash family
//     (p4.HashValue, high word — the low bits of a multiply-shift product
//     are near-bijective and must not index anything). Exactly two probes
//     per packet, so the per-packet cost is O(1) and independent of
//     occupancy — the property the BenchmarkFlowTable* suite pins.
//   - epoch-based lazy expiry, the window trick applied to liveness: an
//     entry's stamp is its last-touch epoch (ts >> EpochShift) plus one, and
//     an entry whose stamp has aged past TTL epochs is dead capacity that
//     the next colliding insert reclaims. No background sweeps, no timers.
//   - an optional 2^-SampleShift sampling front-end (the "Lean Algorithms"
//     front-end): a per-packet coin gates the admission of NEW keys only, so
//     one-packet mice are shed with probability 1−2^-k while established
//     flows always count. The coin folds the timestamp into the hash input
//     so every packet is an independent trial — a heavy flow is admitted
//     after ~2^k packets regardless of where its key hashes.
//
// Every admission decision lands in a ledger (Stats) with two checked
// invariants: Hits+Admitted+Rejected+Shed == Offered, and
// Admitted == Occupied+Evicted. The property tests and the fuzz target
// enforce both, and the emitted flow-table mode in internal/stat4p4 places
// keys with the same hashes in the same layout, so the host table is a
// bit-exact reference for the datapath program.
package flowtable
