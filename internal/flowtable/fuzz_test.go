package flowtable

import (
	"encoding/binary"
	"testing"
)

// FuzzFlowDeterminism pins probe-sequence determinism and the ledger
// invariants on arbitrary (key, ts) workloads: two tables fed the same
// sequence must end bit-identical, every Touch outcome must match, and the
// admission ledger must balance at the end.
func FuzzFlowDeterminism(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11})
	f.Add([]byte{0xff, 0xee, 0xdd, 0xcc, 0xbb, 0xaa, 0x99, 0x88, 0x77, 0x66})
	f.Add(make([]byte, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		cfg := Config{Buckets: 64, EpochShift: 6, TTL: 2, SampleShift: 1}
		a, b := New(cfg), New(cfg)
		var ts uint64
		for len(data) >= 6 {
			// 4 bytes of key (small keyspace forces collisions/evictions),
			// 2 bytes of time advance (small epochs force expiry).
			key := uint64(binary.LittleEndian.Uint32(data)) & 0x3ff
			ts += uint64(binary.LittleEndian.Uint16(data[4:]))
			data = data[6:]
			ia, oa := a.Touch(key, ts)
			ib, ob := b.Touch(key, ts)
			if ia != ib || oa != ob {
				t.Fatalf("nondeterministic touch: (%d,%v) vs (%d,%v)", ia, oa, ib, ob)
			}
		}
		for i := range a.keys {
			if a.keys[i] != b.keys[i] || a.stamps[i] != b.stamps[i] || a.counts[i] != b.counts[i] {
				t.Fatalf("bucket %d diverged between identical runs", i)
			}
		}
		st := a.Stats()
		if st.Hits+st.Admitted+st.Rejected+st.Shed != st.Offered {
			t.Fatalf("ledger leak: %+v", st)
		}
		if st.Admitted != uint64(a.Occupied())+st.Evicted {
			t.Fatalf("conservation violated: %+v occupied=%d", st, a.Occupied())
		}
	})
}
