package flowtable

import (
	"fmt"

	"stat4/internal/p4"
)

// Hash-family assignments, shared with the emitted flow-table mode in
// internal/stat4p4 so host and datapath place every key identically: hash 0
// is the admission coin, hash 1 probes the left half, hash 2 the right.
const (
	hashCoin  = 0
	hashLeft  = 1
	hashRight = 2
)

// Config sizes a Table. The zero value is invalid; use New.
type Config struct {
	// Buckets is the total bucket count, a power of two ≥ 4, split into a
	// left and a right half of Buckets/2 each.
	Buckets int
	// EpochShift sets the expiry clock: epoch id = ts >> EpochShift
	// (2^30 ns ≈ 1.07 s epochs at shift 30).
	EpochShift uint
	// TTL is how many epochs an entry stays live after its last touch
	// (≥ 1). An entry last stamped in epoch e is reclaimable from epoch
	// e+TTL on.
	TTL uint64
	// SampleShift arms the 2^-SampleShift admission coin for new keys
	// (0 = admit every new key).
	SampleShift uint
}

// Outcome classifies one Touch.
type Outcome uint8

const (
	// Hit: the key already owned a live bucket; its count advanced.
	Hit Outcome = iota
	// Admitted: the key claimed an empty bucket.
	Admitted
	// Evicted: the key claimed a bucket by expelling an expired entry.
	Evicted
	// Rejected: both candidate buckets are live with other keys.
	Rejected
	// Shed: a new key lost the admission coin.
	Shed
)

// String names the outcome for test and log output.
func (o Outcome) String() string {
	switch o {
	case Hit:
		return "hit"
	case Admitted:
		return "admitted"
	case Evicted:
		return "evicted"
	case Rejected:
		return "rejected"
	case Shed:
		return "shed"
	}
	return "unknown"
}

// Stats is the admission ledger. Two invariants hold after any Touch
// sequence (and are enforced by the property tests):
//
//	Hits + Admitted + Rejected + Shed == Offered
//	Admitted == Occupied() + Evicted
//
// Admitted counts every claim, whether of an empty bucket or of an expired
// one; Evicted counts the expirations those claims reclaimed.
type Stats struct {
	Offered  uint64
	Hits     uint64
	Admitted uint64
	Evicted  uint64
	Rejected uint64
	Shed     uint64
}

// Table is a fixed-capacity 2-left flow table over flat register-model
// arrays: keys, epoch stamps (0 = empty; otherwise last-touch epoch + 1) and
// counts. All per-packet operations are allocation-free and touch exactly
// two buckets.
type Table struct {
	keys   []uint64
	stamps []uint64
	counts []uint64

	halfMask uint64 // Buckets/2 − 1
	half     uint64 // Buckets/2
	epShift  uint
	ttl      uint64
	coinMask uint64 // 2^SampleShift − 1 (0 = coin always wins)

	occupied uint64
	stats    Stats
}

// New builds a table. It panics on a malformed Config, since sizing is
// compile-time configuration (matching stat4p4.Build's contract).
func New(cfg Config) *Table {
	if cfg.Buckets < 4 || cfg.Buckets&(cfg.Buckets-1) != 0 {
		panic(fmt.Sprintf("flowtable: Buckets must be a power of two ≥ 4, have %d", cfg.Buckets))
	}
	if cfg.TTL == 0 {
		panic("flowtable: TTL must be ≥ 1 epoch")
	}
	if cfg.EpochShift >= 64 {
		panic(fmt.Sprintf("flowtable: EpochShift %d out of range", cfg.EpochShift))
	}
	if cfg.SampleShift > 32 {
		panic(fmt.Sprintf("flowtable: SampleShift %d out of range", cfg.SampleShift))
	}
	return &Table{
		keys:     make([]uint64, cfg.Buckets),
		stamps:   make([]uint64, cfg.Buckets),
		counts:   make([]uint64, cfg.Buckets),
		halfMask: uint64(cfg.Buckets/2) - 1,
		half:     uint64(cfg.Buckets / 2),
		epShift:  cfg.EpochShift,
		ttl:      cfg.TTL,
		coinMask: uint64(1)<<cfg.SampleShift - 1,
	}
}

// Buckets returns the table capacity.
func (t *Table) Buckets() int { return len(t.keys) }

// probes returns the key's two candidate buckets: left half by hash 1,
// right half by hash 2, high words masked — the exact indexes the emitted
// program computes.
//
//stat4:datapath
func (t *Table) probes(key uint64) (left, right uint64) {
	left = (p4.HashValue(hashLeft, key) >> 32) & t.halfMask
	right = t.half + ((p4.HashValue(hashRight, key)>>32)&t.halfMask)
	return left, right
}

// live reports whether bucket i holds a fresh entry at epoch ep. stamp 0 is
// empty; a nonzero stamp s is live while (ep+1) − s < TTL. The subtraction
// wraps for s = 0, but that case is excluded first.
//
//stat4:datapath
func (t *Table) live(i, ep uint64) bool {
	s := t.stamps[i]
	return s != 0 && ep+1-s < t.ttl
}

// coin reports whether the admission coin lands heads for this packet: the
// timestamp folds into the hash input so every packet of a key is an
// independent 2^-SampleShift trial, and the product's high word feeds the
// mask (multiply-shift low bits are near-bijective and would bias the coin).
//
//stat4:datapath
func (t *Table) coin(key, ts uint64) bool {
	return (p4.HashValue(hashCoin, key+ts)>>32)&t.coinMask == 0
}

// Touch records one packet of key at virtual time ts: a lookup, an admission
// (possibly reclaiming an expired bucket) or a shed/reject, plus the count
// and stamp updates. It returns the bucket index the packet landed in (−1
// for Rejected/Shed) and the outcome. Exactly two buckets are probed and
// nothing is allocated, whatever the occupancy.
//
//stat4:datapath
func (t *Table) Touch(key, ts uint64) (int, Outcome) {
	t.stats.Offered++
	ep := ts >> t.epShift //stat4:exempt:shiftconst EpochShift is compile-time configuration; the emitted program bakes it as a RefConst
	l, r := t.probes(key)

	// Hit paths: the key owns a live bucket.
	if t.keys[l] == key && t.live(l, ep) {
		t.counts[l]++
		t.stamps[l] = ep + 1
		t.stats.Hits++
		return int(l), Hit
	}
	if t.keys[r] == key && t.live(r, ep) {
		t.counts[r]++
		t.stamps[r] = ep + 1
		t.stats.Hits++
		return int(r), Hit
	}

	// Miss: the 2^-k front-end sheds new keys before any state moves.
	if !t.coin(key, ts) {
		t.stats.Shed++
		return -1, Shed
	}

	// Claim order: the key's own stale bucket first (so an expired flow
	// restarts in place instead of leaving a dead duplicate), then the
	// d-left discipline — empty-left, empty-right, expired-left,
	// expired-right. A deterministic order keeps placements reproducible,
	// which the fuzz target pins.
	if t.keys[l] == key && t.stamps[l] != 0 {
		return t.claim(l, key, ep, Evicted)
	}
	if t.keys[r] == key && t.stamps[r] != 0 {
		return t.claim(r, key, ep, Evicted)
	}
	if t.stamps[l] == 0 {
		return t.claim(l, key, ep, Admitted)
	}
	if t.stamps[r] == 0 {
		return t.claim(r, key, ep, Admitted)
	}
	if !t.live(l, ep) {
		return t.claim(l, key, ep, Evicted)
	}
	if !t.live(r, ep) {
		return t.claim(r, key, ep, Evicted)
	}
	t.stats.Rejected++
	return -1, Rejected
}

// claim takes bucket i for key at epoch ep, reclaiming an expired occupant
// when out == Evicted.
//
//stat4:datapath
func (t *Table) claim(i, key, ep uint64, out Outcome) (int, Outcome) {
	if out == Evicted {
		t.stats.Evicted++
	} else {
		t.occupied++
	}
	t.keys[i] = key
	t.stamps[i] = ep + 1
	t.counts[i] = 1
	t.stats.Admitted++
	return int(i), out
}

// Lookup returns the key's count if it owns a live bucket at ts. It mutates
// nothing — no stamp refresh, no ledger entry — and probes two buckets.
//
//stat4:datapath
func (t *Table) Lookup(key, ts uint64) (count uint64, ok bool) {
	ep := ts >> t.epShift //stat4:exempt:shiftconst EpochShift is compile-time configuration; the emitted program bakes it as a RefConst
	l, r := t.probes(key)
	if t.keys[l] == key && t.live(l, ep) {
		return t.counts[l], true
	}
	if t.keys[r] == key && t.live(r, ep) {
		return t.counts[r], true
	}
	return 0, false
}

// Occupied returns the number of buckets holding an entry, live or expired
// (expired entries are capacity pending lazy reclamation, not free space).
func (t *Table) Occupied() int { return int(t.occupied) }

// Live counts the entries still fresh at ts — a control-plane scan.
func (t *Table) Live(ts uint64) int {
	ep := ts >> t.epShift //stat4:exempt:shiftconst EpochShift is compile-time configuration; the emitted program bakes it as a RefConst
	n := 0
	for i := range t.stamps {
		if t.live(uint64(i), ep) {
			n++
		}
	}
	return n
}

// Stats returns the admission ledger.
func (t *Table) Stats() Stats { return t.stats }

// Entry is one occupied bucket as the control plane reads it.
type Entry struct {
	Key   uint64
	Count uint64
	// Stamp is the entry's last-touch epoch + 1.
	Stamp uint64
}

// Each calls fn for every occupied bucket (live or expired), in bucket
// order. Control-plane only.
func (t *Table) Each(fn func(e Entry)) {
	for i, s := range t.stamps {
		if s != 0 {
			fn(Entry{Key: t.keys[i], Count: t.counts[i], Stamp: s})
		}
	}
}

// Reset clears all buckets and the ledger.
func (t *Table) Reset() {
	for i := range t.keys {
		t.keys[i], t.stamps[i], t.counts[i] = 0, 0, 0
	}
	t.occupied = 0
	t.stats = Stats{}
}

// MemoryCells returns the register-model footprint: a key, a stamp and a
// count cell per bucket. Compare with one dense counter per possible key.
func (t *Table) MemoryCells() int { return 3 * len(t.keys) }
