package flowtable

import (
	"fmt"
	"sort"

	"stat4/internal/p4"
)

// Sharded partitions one logical flow table over N independent Tables by
// flow-hash, the same Lemire range reduction p4.ShardedSwitch dispatches
// packets with — every key lands on exactly one shard, so shard ledgers and
// counts are additive and merge without double counting.
type Sharded struct {
	tabs []*Table
}

// NewSharded builds n identical shards of cfg. Each shard gets the full
// cfg.Buckets, mirroring the emitted program (every shard runs the whole
// register file).
func NewSharded(cfg Config, n int) *Sharded {
	if n <= 0 {
		panic(fmt.Sprintf("flowtable: non-positive shard count %d", n))
	}
	s := &Sharded{tabs: make([]*Table, n)}
	for i := range s.tabs {
		s.tabs[i] = New(cfg)
	}
	return s
}

// ShardOf returns the shard index a key routes to.
//
//stat4:datapath
func (s *Sharded) ShardOf(key uint64) int {
	h32 := p4.HashValue(0, key) >> 32
	return int((h32 * uint64(len(s.tabs))) >> 32)
}

// Shard returns the i-th shard table (for per-shard drivers: each ingest
// worker owns its shard and calls Touch without synchronisation).
func (s *Sharded) Shard(i int) *Table { return s.tabs[i] }

// NumShards returns the shard count.
func (s *Sharded) NumShards() int { return len(s.tabs) }

// Touch routes one packet to its key's shard. Single-driver convenience;
// concurrent callers must instead partition packets by ShardOf and drive
// each shard from one goroutine, as the benchmarks do.
//
//stat4:datapath
func (s *Sharded) Touch(key, ts uint64) (shard, idx int, out Outcome) {
	sh := s.ShardOf(key)
	idx, out = s.tabs[sh].Touch(key, ts)
	return sh, idx, out
}

// MergedStats sums the shard ledgers — exact, since every key is owned by
// one shard.
func (s *Sharded) MergedStats() Stats {
	var m Stats
	for _, t := range s.tabs {
		st := t.Stats()
		m.Offered += st.Offered
		m.Hits += st.Hits
		m.Admitted += st.Admitted
		m.Evicted += st.Evicted
		m.Rejected += st.Rejected
		m.Shed += st.Shed
	}
	return m
}

// MergedOccupied sums occupied buckets across shards.
func (s *Sharded) MergedOccupied() int {
	n := 0
	for _, t := range s.tabs {
		n += t.Occupied()
	}
	return n
}

// MergedEntries merges the shards' occupied buckets by key (counts add,
// stamps take the freshest), sorted by descending count then ascending key —
// the controller-side flow view, same contract as the heavy-hitter merge.
func (s *Sharded) MergedEntries() []Entry {
	type acc struct {
		count uint64
		stamp uint64
	}
	byKey := make(map[uint64]acc)
	for _, t := range s.tabs {
		t.Each(func(e Entry) {
			a := byKey[e.Key]
			a.count += e.Count
			if e.Stamp > a.stamp {
				a.stamp = e.Stamp
			}
			byKey[e.Key] = a
		})
	}
	out := make([]Entry, 0, len(byKey))
	for k, a := range byKey {
		out = append(out, Entry{Key: k, Count: a.count, Stamp: a.stamp})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key
	})
	return out
}
