package flowtable

import (
	"math/rand"
	"sort"
	"testing"
)

// checkLedger asserts the two documented ledger invariants.
func checkLedger(t *testing.T, tab *Table) {
	t.Helper()
	st := tab.Stats()
	if st.Hits+st.Admitted+st.Rejected+st.Shed != st.Offered {
		t.Fatalf("ledger leak: hits %d + admitted %d + rejected %d + shed %d != offered %d",
			st.Hits, st.Admitted, st.Rejected, st.Shed, st.Offered)
	}
	if st.Admitted != uint64(tab.Occupied())+st.Evicted {
		t.Fatalf("conservation: admitted %d != occupied %d + evicted %d",
			st.Admitted, tab.Occupied(), st.Evicted)
	}
	// Occupied must agree with a full recount.
	n := 0
	tab.Each(func(Entry) { n++ })
	if n != tab.Occupied() {
		t.Fatalf("occupied %d != recount %d", tab.Occupied(), n)
	}
}

func TestTouchAdmitHitLookup(t *testing.T) {
	tab := New(Config{Buckets: 64, EpochShift: 20, TTL: 4})
	idx, out := tab.Touch(42, 0)
	if out != Admitted || idx < 0 {
		t.Fatalf("first touch: got (%d, %v), want admission", idx, out)
	}
	for i := 0; i < 9; i++ {
		if _, out := tab.Touch(42, uint64(i)); out != Hit {
			t.Fatalf("touch %d: got %v, want hit", i, out)
		}
	}
	if c, ok := tab.Lookup(42, 9); !ok || c != 10 {
		t.Fatalf("lookup: got (%d, %v), want (10, true)", c, ok)
	}
	if _, ok := tab.Lookup(7, 9); ok {
		t.Fatal("lookup of never-admitted key succeeded")
	}
	if tab.Occupied() != 1 {
		t.Fatalf("occupied = %d, want 1", tab.Occupied())
	}
	checkLedger(t, tab)
}

func TestEpochExpiryAndEviction(t *testing.T) {
	// 2^10 ns epochs, TTL 2: an entry stamped in epoch e dies at e+2.
	tab := New(Config{Buckets: 8, EpochShift: 10, TTL: 2})
	tab.Touch(1, 0) // epoch 0
	if _, ok := tab.Lookup(1, 1<<10); !ok {
		t.Fatal("entry should be live one epoch after touch")
	}
	if _, ok := tab.Lookup(1, 2<<10); ok {
		t.Fatal("entry should be expired two epochs after touch")
	}
	// The expired bucket is dead capacity until a claim reclaims it.
	if tab.Occupied() != 1 {
		t.Fatalf("occupied = %d before reclamation, want 1", tab.Occupied())
	}
	// The key itself re-admits through eviction of its own stale entry,
	// restarting the count.
	if _, out := tab.Touch(1, 2<<10); out != Evicted {
		t.Fatalf("re-touch of expired key: got %v, want evicted", out)
	}
	if c, _ := tab.Lookup(1, 2<<10); c != 1 {
		t.Fatalf("count after expiry restart = %d, want 1", c)
	}
	st := tab.Stats()
	if st.Evicted != 1 || st.Admitted != 2 {
		t.Fatalf("ledger after eviction: %+v", st)
	}
	checkLedger(t, tab)
}

func TestRejectionWhenCandidatesLive(t *testing.T) {
	tab := New(Config{Buckets: 4, EpochShift: 30, TTL: 8})
	// Find a key and two occupants of its candidate buckets.
	victim := uint64(1)
	l, r := tab.probes(victim)
	var occL, occR uint64
	for k := uint64(2); occL == 0 || occR == 0; k++ {
		kl, kr := tab.probes(k)
		if occL == 0 && (kl == l || kr == l) {
			// claim order prefers empty-left, so force the left claim by
			// filling left first
			occL = k
			continue
		}
		if occR == 0 && (kl == r || kr == r) && k != occL {
			occR = k
		}
	}
	tab.Touch(occL, 0)
	tab.Touch(occR, 0)
	// Both of victim's candidates may not be taken if occupants claimed
	// their other bucket; place directly when needed.
	if tab.stamps[l] == 0 {
		tab.keys[l], tab.stamps[l], tab.counts[l] = 99, 1, 1
		tab.occupied++
		tab.stats.Offered++
		tab.stats.Admitted++
	}
	if tab.stamps[r] == 0 {
		tab.keys[r], tab.stamps[r], tab.counts[r] = 98, 1, 1
		tab.occupied++
		tab.stats.Offered++
		tab.stats.Admitted++
	}
	if _, out := tab.Touch(victim, 0); out != Rejected {
		t.Fatalf("touch with both candidates live: got %v, want rejected", out)
	}
	checkLedger(t, tab)
}

func TestSamplingFrontEnd(t *testing.T) {
	// 2^-6 coin: one-packet mice are mostly shed, a persistent flow is
	// admitted after ~64 packets and counted on every packet thereafter.
	tab := New(Config{Buckets: 1 << 12, EpochShift: 40, TTL: 8, SampleShift: 6})
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 4096; i++ {
		tab.Touch(uint64(1e6)+uint64(rng.Int63n(1<<40)), uint64(i))
	}
	st := tab.Stats()
	if st.Shed == 0 {
		t.Fatal("2^-6 front-end shed no mice")
	}
	shedFrac := float64(st.Shed) / float64(st.Offered)
	if shedFrac < 0.90 {
		t.Fatalf("one-packet mice shed fraction = %.3f, want ≥ 0.90", shedFrac)
	}
	// An elephant sending 2048 packets must get through and then count.
	elephant := uint64(7)
	var admittedAt int = -1
	for i := 0; i < 2048; i++ {
		_, out := tab.Touch(elephant, uint64(10000+i))
		if out == Admitted && admittedAt < 0 {
			admittedAt = i
		}
	}
	if admittedAt < 0 {
		t.Fatal("elephant never admitted through the 2^-6 coin")
	}
	c, ok := tab.Lookup(elephant, 12047)
	if !ok || c != uint64(2048-admittedAt) {
		t.Fatalf("elephant count = %d (ok=%v), want %d", c, ok, 2048-admittedAt)
	}
	checkLedger(t, tab)
}

// TestLedgerProperty drives random churny workloads and asserts the ledger
// invariants at every checkpoint — the insert/evict/expire conservation law
// of the ISSUE.
func TestLedgerProperty(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		cfg := Config{
			Buckets:     1 << uint(4+rng.Intn(6)),
			EpochShift:  uint(8 + rng.Intn(8)),
			TTL:         uint64(1 + rng.Intn(4)),
			SampleShift: uint(rng.Intn(3) * 2),
		}
		tab := New(cfg)
		var ts uint64
		keyspace := uint64(1 + rng.Intn(4*cfg.Buckets))
		for step := 0; step < 20000; step++ {
			ts += uint64(rng.Intn(1 << 10))
			tab.Touch(uint64(rng.Int63n(int64(keyspace))), ts)
			if step%4999 == 0 {
				checkLedger(t, tab)
			}
		}
		checkLedger(t, tab)
		st := tab.Stats()
		if st.Offered != 20000 {
			t.Fatalf("seed %d: offered = %d, want 20000", seed, st.Offered)
		}
	}
}

// TestDeterministicPlacement: two tables fed the same sequence are
// bit-identical — the property the fuzz target extends to arbitrary inputs.
func TestDeterministicPlacement(t *testing.T) {
	cfg := Config{Buckets: 256, EpochShift: 12, TTL: 3, SampleShift: 2}
	a, b := New(cfg), New(cfg)
	rng := rand.New(rand.NewSource(11))
	var ts uint64
	for i := 0; i < 50000; i++ {
		ts += uint64(rng.Intn(4096))
		k := uint64(rng.Int63n(1024))
		ia, oa := a.Touch(k, ts)
		ib, ob := b.Touch(k, ts)
		if ia != ib || oa != ob {
			t.Fatalf("step %d: divergent outcomes (%d,%v) vs (%d,%v)", i, ia, oa, ib, ob)
		}
	}
	for i := range a.keys {
		if a.keys[i] != b.keys[i] || a.stamps[i] != b.stamps[i] || a.counts[i] != b.counts[i] {
			t.Fatalf("bucket %d diverged", i)
		}
	}
}

// TestBoundedMemory pins the capacity contract: millions of distinct keys
// leave the backing arrays untouched in size — state is bounded by
// configuration, not by offered cardinality.
func TestBoundedMemory(t *testing.T) {
	keys := 1 << 16
	if !testing.Short() {
		keys = 1 << 20
	}
	tab := New(Config{Buckets: 1 << 10, EpochShift: 30, TTL: 4})
	cells := tab.MemoryCells()
	kcap, scap, ccap := cap(tab.keys), cap(tab.stamps), cap(tab.counts)
	for k := 0; k < keys; k++ {
		tab.Touch(uint64(k), uint64(k))
	}
	if tab.MemoryCells() != cells {
		t.Fatalf("MemoryCells moved: %d → %d", cells, tab.MemoryCells())
	}
	if cap(tab.keys) != kcap || cap(tab.stamps) != scap || cap(tab.counts) != ccap {
		t.Fatal("backing arrays reallocated under high cardinality")
	}
	if tab.Occupied() > tab.Buckets() {
		t.Fatalf("occupied %d exceeds buckets %d", tab.Occupied(), tab.Buckets())
	}
	checkLedger(t, tab)
}

// TestZeroAllocTouch pins the 0 allocs/packet steady-state contract for the
// whole per-packet surface.
func TestZeroAllocTouch(t *testing.T) {
	tab := New(Config{Buckets: 1 << 12, EpochShift: 20, TTL: 4, SampleShift: 2})
	var ts, k uint64
	if n := testing.AllocsPerRun(10000, func() {
		k = k*2862933555777941757 + 3037000493
		ts += 512
		tab.Touch(k>>40, ts)
		tab.Lookup(k>>41, ts)
	}); n != 0 {
		t.Fatalf("Touch/Lookup allocate %.1f per packet, want 0", n)
	}
}

// TestShardedMergeMatchesSerial: at low load factor (no rejections, no
// expiry) the sharded table's merged per-key counts equal a serial table's —
// the flow-level merge contract.
func TestShardedMergeMatchesSerial(t *testing.T) {
	cfg := Config{Buckets: 1 << 14, EpochShift: 40, TTL: 8}
	serial := New(cfg)
	for _, shards := range []int{2, 4, 8} {
		sh := NewSharded(cfg, shards)
		rng := rand.New(rand.NewSource(5))
		serial.Reset()
		for i := 0; i < 60000; i++ {
			k := uint64(rng.Int63n(3000))
			ts := uint64(i) * 700
			serial.Touch(k, ts)
			sh.Touch(k, ts)
		}
		if st := serial.Stats(); st.Rejected != 0 {
			t.Fatalf("serial rejections at low load: %+v", st)
		}
		want := map[uint64]uint64{}
		serial.Each(func(e Entry) { want[e.Key] = e.Count })
		merged := sh.MergedEntries()
		if len(merged) != len(want) {
			t.Fatalf("%d shards: merged %d keys, serial %d", shards, len(merged), len(want))
		}
		for _, e := range merged {
			if want[e.Key] != e.Count {
				t.Fatalf("%d shards: key %d count %d, serial %d", shards, e.Key, e.Count, want[e.Key])
			}
		}
		ms := sh.MergedStats()
		ss := serial.Stats()
		if ms.Offered != ss.Offered || ms.Hits != ss.Hits || ms.Admitted != ss.Admitted {
			t.Fatalf("%d shards: ledger mismatch merged %+v serial %+v", shards, ms, ss)
		}
	}
}

// TestErrorVsDenseBaseline measures the flow-table's count error against a
// dense exact baseline on a zipf population at the documented operating
// point (load factor ≈ 0.5 at 2-left, no sampling), and pins the DESIGN.md
// bounds: zero error on the top-100 flows, ≤ 1% of packets lost to
// rejection.
func TestErrorVsDenseBaseline(t *testing.T) {
	population := uint64(1 << 16)
	packets := 1 << 18
	if !testing.Short() {
		population = 1 << 20 // the 1M-flow operating point of the ISSUE
		packets = 1 << 22
	}
	tab := New(Config{Buckets: 1 << 21, EpochShift: 62, TTL: 8})
	if testing.Short() {
		tab = New(Config{Buckets: 1 << 17, EpochShift: 62, TTL: 8})
	}
	dense := make([]uint64, population)
	z := rand.NewZipf(rand.New(rand.NewSource(3)), 1.2, 1, population-1)
	for i := 0; i < packets; i++ {
		k := z.Uint64()
		dense[k]++
		tab.Touch(k, uint64(i))
	}
	st := tab.Stats()
	lost := float64(st.Rejected+st.Shed) / float64(st.Offered)
	if lost > 0.01 {
		t.Fatalf("lost-packet fraction %.4f exceeds the 1%% bound (stats %+v)", lost, st)
	}
	// Top-100 flows by exact count must be tracked exactly.
	type kc struct{ k, c uint64 }
	var ranked []kc
	for k, c := range dense {
		if c > 0 {
			ranked = append(ranked, kc{uint64(k), c})
		}
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].c != ranked[j].c {
			return ranked[i].c > ranked[j].c
		}
		return ranked[i].k < ranked[j].k
	})
	top := 100
	if len(ranked) < top {
		top = len(ranked)
	}
	for _, e := range ranked[:top] {
		got, ok := tab.Lookup(e.k, uint64(packets))
		if !ok || got != e.c {
			t.Fatalf("top flow %d: table %d (ok=%v), exact %d", e.k, got, ok, e.c)
		}
	}
	checkLedger(t, tab)
}
