// Package core is the reference implementation of Stat4, the in-switch
// statistics library of "Stats 101 in P4: Towards In-Switch Anomaly
// Detection" (HotNets '21). It tracks distributions of values of interest
// extracted from traffic and maintains their statistical measures online,
// using only operations a P4 target supports: additions, subtractions,
// comparisons, bitwise logic and constant shifts. There is no division, no
// floating point, and every update is a bounded straight-line computation.
//
// The central trick (Section 2 of the paper) is to track the scaled
// distribution NX = {N·x1, …, N·xN} instead of X: the mean of NX is exactly
// Xsum = Σxi (no division), and its variance is N·Xsumsq − Xsum² where
// Xsumsq = Σxi². Anomaly checks compare relative values, so the scaling
// cancels out.
//
// The same algorithms are emitted as P4-style IR by internal/stat4p4 and run
// inside the switch simulator of internal/p4; tests cross-validate the two.
package core

import (
	"math/bits"

	"stat4/internal/intstat"
)

// Moments maintains N, Xsum and Xsumsq for a distribution X, plus the derived
// scaled variance and standard deviation of NX. The standard deviation is
// computed lazily: the MSB hunt behind the approximate square root runs only
// when a reader asks for a value after the moments changed, mirroring Stat4's
// "lazy computation of standard deviation" (Section 3).
type Moments struct {
	N     uint64 // number of values in the distribution
	Sum   uint64 // Xsum  = Σ xi — also the mean of NX
	Sumsq uint64 // Xsumsq = Σ xi²

	sd    uint64 // cached standard deviation of NX
	dirty bool   // moments changed since sd was computed

	// SDRecomputes counts how many times the square root actually ran; the
	// lazy-vs-eager ablation reads it.
	SDRecomputes uint64
}

// NewMoments builds moments directly from already-known N, Xsum and Xsumsq
// (for example, values read back from switch registers or merged across
// switches). The derived measures are marked stale so the first read
// computes them.
func NewMoments(n, sum, sumsq uint64) Moments {
	return Moments{N: n, Sum: sum, Sumsq: sumsq, dirty: true}
}

// AddSample folds a new value into the moments: N += 1, Xsum += x,
// Xsumsq += x².
//
//stat4:datapath
func (m *Moments) AddSample(x uint64) {
	m.N++
	m.Sum += x
	m.Sumsq += x * x
	m.dirty = true
}

// RemoveSample evicts a value from the moments, used when a circular time
// window overwrites its oldest counter. N is left unchanged by Window (the
// window stays full); callers that shrink the population decrement N
// themselves.
//
//stat4:datapath
func (m *Moments) RemoveSample(x uint64) {
	m.Sum = intstat.SatSub(m.Sum, x)
	m.Sumsq = intstat.SatSub(m.Sumsq, x*x)
	m.dirty = true
}

// AddFrequency adjusts the moments for a frequency-mode distribution where
// the counter for some value moves from f to f+1: Xsum += 1 and
// Xsumsq += 2f + 1 (the incremental identity that avoids runtime squaring).
// newValue reports whether this is the first observation of the value, in
// which case N grows.
//
//stat4:datapath
func (m *Moments) AddFrequency(f uint64, newValue bool) {
	if newValue {
		m.N++
	}
	m.Sum++
	m.Sumsq += intstat.IncSumsq(f)
	m.dirty = true
}

// Mean returns the mean of the scaled distribution NX, which is exactly Xsum.
//
//stat4:datapath
func (m *Moments) Mean() uint64 { return m.Sum }

// Variance returns the variance of NX: N·Xsumsq − Xsum². The result
// saturates at the top of the uint64 range rather than wrapping, so an
// overflowing distribution reads as "enormous spread" instead of a small
// value that would mask anomalies. By the Cauchy–Schwarz inequality the
// mathematical value is never negative; saturating subtraction guards the
// integer computation all the same.
//
//stat4:datapath
func (m *Moments) Variance() uint64 {
	hi, lo := bits.Mul64(m.N, m.Sumsq)
	shi, slo := bits.Mul64(m.Sum, m.Sum)
	if hi > shi || (hi == shi && lo >= slo) {
		// Non-negative difference; saturate if the high word is nonzero.
		dlo, b := bits.Sub64(lo, slo, 0)
		dhi, _ := bits.Sub64(hi, shi, b)
		if dhi != 0 {
			return ^uint64(0)
		}
		return dlo
	}
	return 0
}

// StdDev returns the approximate standard deviation of NX, the Figure 2
// square root of Variance. The value is cached and recomputed only when the
// moments have changed since the last read.
//
//stat4:datapath
func (m *Moments) StdDev() uint64 {
	if m.dirty {
		m.sd = intstat.SqrtApprox(m.Variance())
		m.dirty = false
		m.SDRecomputes++
	}
	return m.sd
}

// StdDevEager recomputes the standard deviation unconditionally. It is the
// eager partner in the lazy-vs-eager ablation and is otherwise equivalent to
// StdDev.
//
//stat4:datapath
func (m *Moments) StdDevEager() uint64 {
	m.sd = intstat.SqrtApprox(m.Variance())
	m.dirty = false
	m.SDRecomputes++
	return m.sd
}

// IsOutlierAbove reports whether a value x sits more than k standard
// deviations above the mean, evaluated entirely in NX space:
// N·x > Xsum + k·σ(NX). This is the paper's outlier test for normally
// distributed values of interest.
//
//stat4:datapath
func (m *Moments) IsOutlierAbove(x, k uint64) bool {
	hi, lo := bits.Mul64(m.N, x)
	if hi != 0 {
		return true // N·x overflows: certainly above any threshold
	}
	thrHi, thrLo := bits.Mul64(k, m.StdDev())
	var carry uint64
	thrLo, carry = bits.Add64(thrLo, m.Sum, 0)
	thrHi += carry
	if thrHi != 0 {
		return false
	}
	return lo > thrLo
}

// IsOutlierBelow reports whether x sits more than k standard deviations below
// the mean: N·x + k·σ(NX) < Xsum.
//
//stat4:datapath
func (m *Moments) IsOutlierBelow(x, k uint64) bool {
	hi, lo := bits.Mul64(m.N, x)
	if hi != 0 {
		return false
	}
	thrHi, thrLo := bits.Mul64(k, m.StdDev())
	var carry uint64
	thrLo, carry = bits.Add64(thrLo, lo, 0)
	thrHi += carry
	if thrHi != 0 {
		return false
	}
	return thrLo < m.Sum
}

// Reset clears the moments to the empty distribution.
func (m *Moments) Reset() {
	m.N, m.Sum, m.Sumsq, m.sd = 0, 0, 0, 0
	m.dirty = false
}
