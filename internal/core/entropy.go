package core

import "stat4/internal/intstat"

// Entropy tracks the Shannon entropy of a frequency distribution in fixed
// point, integer-only — the normalized-entropy DDoS signal of Ding et al.
// (the paper's reference [7]), built on the same exponent/mantissa log2 the
// library already uses.
//
// The tracker maintains the accumulator
//
//	S = Σ_v f_v · Log2Fixed(f_v, frac)
//
// incrementally: when a counter steps f−1 → f, S gains f·L(f) − (f−1)·L(f−1),
// two log lookups and two multiplies — per-packet work a switch can do. The
// entropy itself never needs a division on the datapath: with T = Σ f_v
// (frequency-mode Xsum),
//
//	H·T = T·L(T) − S
//
// so "entropy below h0" is the multiply-and-compare T·L(T) − S < h0·T
// (ScaledBits / Below), and the normalization by log2(domain) folds into h0
// at configuration time.
//
// All arithmetic wraps mod 2^64, like the register accumulators it models;
// an incremental S therefore always equals a from-scratch recompute over the
// same counters (Rederive), which is what makes sharded merges exact.
type Entropy struct {
	frac uint
	sum  uint64 // S = Σ f·Log2Fixed(f, frac), wrapping
}

// TrackEntropy registers an entropy tracker with frac fractional bits on the
// distribution and returns it. Subsequent Observe calls maintain the
// accumulator; counters already present are folded in immediately. frac must
// not exceed intstat.Log2MaxFrac.
func (d *FreqDist) TrackEntropy(frac uint) *Entropy {
	if frac > intstat.Log2MaxFrac {
		panic("core: entropy fraction exceeds Log2MaxFrac")
	}
	e := &Entropy{frac: frac}
	e.Rederive(d.freq)
	d.ent = e
	return e
}

// Entropy returns the registered entropy tracker, or nil.
func (d *FreqDist) Entropy() *Entropy { return d.ent }

// Frac returns the fractional width of the fixed-point logs.
func (e *Entropy) Frac() uint { return e.frac }

// Sum returns the raw accumulator S = Σ f·Log2Fixed(f, frac). It is the
// value the emitted program keeps in its entropy register.
func (e *Entropy) Sum() uint64 { return e.sum }

// observe accounts one counter stepping to fNew (= old count + 1).
//
//stat4:datapath
func (e *Entropy) observe(fNew uint64) {
	e.sum += fNew*intstat.Log2Fixed(fNew, e.frac) -
		(fNew-1)*intstat.Log2Fixed(fNew-1, e.frac)
}

// ScaledBits returns H·T in fixed point: T·L(T) − S for T total
// observations. Because Log2Fixed is monotone and every f_v ≤ T, the
// difference is non-negative whenever the accumulator has not wrapped. A
// concentrated distribution (all mass on one value) gives exactly 0; a
// uniform one approaches T·log2(domain)·2^frac.
//
//stat4:datapath
func (e *Entropy) ScaledBits(total uint64) uint64 {
	return total*intstat.Log2Fixed(total, e.frac) - e.sum
}

// Below reports whether the entropy is below h0, a threshold in the same
// fixed point as Log2Fixed(·, frac): H < h0 ⇔ T·L(T) − S < h0·T. This is
// the anomaly predicate — low entropy means the traffic has concentrated.
// An empty distribution (total == 0) is never below.
//
//stat4:datapath
func (e *Entropy) Below(total, h0 uint64) bool {
	if total == 0 {
		return false
	}
	return e.ScaledBits(total) < h0*total
}

// Reset zeroes the accumulator.
func (e *Entropy) Reset() { e.sum = 0 }

// Rederive recomputes the accumulator from a counter array — the merge path:
// S is not additive across shards (log is not linear), so after counters
// merge cell-wise the accumulator rebuilds by one bounded walk, exactly like
// percentile markers re-derive. The result is bit-identical to what
// incremental maintenance over the merged stream would have produced.
//
//stat4:reference merging runs controller-side, once per interval, not per packet
func (e *Entropy) Rederive(freq []uint64) {
	var s uint64
	for _, f := range freq {
		if f > 1 { // L(0) = L(1) = 0 contribute nothing
			s += f * intstat.Log2Fixed(f, e.frac)
		}
	}
	e.sum = s
}
