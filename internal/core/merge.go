package core

import "fmt"

// This file gives every Stat4 distribution an explicit integer-only merge
// operation. Mergeability falls out of the paper's scaled-moments design:
// Xsum and Xsumsq are plain sums and frequency arrays are plain counters, so
// K replicas of a distribution — one per switch pipeline, one per core —
// combine by addition, and the derived measures (variance, standard
// deviation, percentiles) are recomputed from the combined state. Merging
// runs on the controller side, once per collection interval, never per
// packet; the functions here are therefore reference-side code, free to
// loop over counter arrays.

// ErrShapeMismatch is returned when two distributions cannot be merged
// because their configurations differ (domain size, capacity, or window
// alignment).
var ErrShapeMismatch = fmt.Errorf("core: merge shape mismatch")

// MergeFrom folds another sample-mode Moments into m by adding the three
// scaled moments. This is exact: N, Xsum and Xsumsq are sums over disjoint
// sample sets, so addition over shards equals serial accumulation. The
// derived standard deviation is marked stale and recomputed lazily on the
// next read.
//
// Frequency-mode moments are NOT additive this way — two shards that both
// saw value v each count it in N, and Σ(f+g)² ≠ Σf² + Σg². Merge
// frequency-mode state with FreqDist.MergeFrom, which recomputes the
// moments from the combined counters.
//
//stat4:reference merging runs controller-side, once per interval, not per packet
func (m *Moments) MergeFrom(o *Moments) {
	m.N += o.N
	m.Sum += o.Sum
	m.Sumsq += o.Sumsq
	m.dirty = true
}

// MergeFrom folds another frequency distribution over the same value domain
// into d: counters add cell-wise and the moments are adjusted with the exact
// incremental identities
//
//	N      += 1 for each value present in o but not yet in d
//	Xsum   += g             (g = o's counter)
//	Xsumsq += 2·f·g + g²    ((f+g)² − f² for d's prior counter f)
//
// so the merged N/Xsum/Xsumsq equal what serial processing of the combined
// stream would have produced, bit for bit. Registered percentile markers are
// re-derived from the merged counter array by a bounded walk (Rederive);
// their positions are then within the one-slot-per-packet guarantee of the
// serial markers, but their Moves counters keep their pre-merge values — a
// marker's path is an artefact of packet order, which a merge has no notion
// of.
//
// Merging a distribution with a different domain size returns
// ErrShapeMismatch and leaves d untouched.
//
//stat4:reference merging runs controller-side, once per interval, not per packet
func (d *FreqDist) MergeFrom(o *FreqDist) error {
	if len(d.freq) != len(o.freq) {
		return fmt.Errorf("%w: FreqDist sizes %d and %d", ErrShapeMismatch, len(d.freq), len(o.freq))
	}
	for v, g := range o.freq {
		if g == 0 {
			continue
		}
		f := d.freq[v]
		if f == 0 {
			d.m.N++
		}
		d.freq[v] = f + g
		d.m.Sum += g
		d.m.Sumsq += 2*f*g + g*g
	}
	d.m.dirty = true
	for _, p := range d.pct {
		p.Rederive(d)
	}
	if d.ent != nil {
		d.ent.Rederive(d.freq)
	}
	return nil
}

// MergeFrom folds another sample distribution into d by appending o's
// samples and adding the moments (exact, as for sample-mode Moments). It
// returns ErrShapeMismatch when d lacks the free cells to hold o's samples.
//
//stat4:reference merging runs controller-side, once per interval, not per packet
func (d *SampleDist) MergeFrom(o *SampleDist) error {
	if d.n+o.n > len(d.cells) {
		return fmt.Errorf("%w: %d+%d samples exceed capacity %d", ErrShapeMismatch, d.n, o.n, len(d.cells))
	}
	copy(d.cells[d.n:], o.cells[:o.n])
	d.n += o.n
	d.m.MergeFrom(&o.m)
	return nil
}

// MergeFrom folds another window into w cell-wise: per-interval counters
// add, the squared shadow is recomputed as the square of each merged cell,
// and the moments are rebuilt from the merged cells. This models K pipelines
// that tick in lockstep, each seeing a share of the traffic: the merged
// window is exactly the window a single pipeline would hold had it seen all
// the traffic.
//
// The model only holds when the windows are aligned — same capacity, same
// head, same fill level. Shards driven by a shared clock (one Tick fan-out
// per interval) satisfy this by construction; windows ticked independently
// do not, and merging them returns ErrShapeMismatch rather than silently
// adding counters from different time intervals.
//
//stat4:reference merging runs controller-side, once per interval, not per packet
func (w *Window) MergeFrom(o *Window) error {
	if len(w.cells) != len(o.cells) {
		return fmt.Errorf("%w: Window capacities %d and %d", ErrShapeMismatch, len(w.cells), len(o.cells))
	}
	if w.head != o.head || w.filled != o.filled {
		return fmt.Errorf("%w: Window alignment (head %d/%d, filled %d/%d)", ErrShapeMismatch, w.head, o.head, w.filled, o.filled)
	}
	w.m.Sum, w.m.Sumsq = 0, 0
	for i := range w.cells {
		c := w.cells[i] + o.cells[i]
		w.cells[i] = c
		w.sq[i] = c * c
	}
	for i := 0; i < w.filled; i++ {
		// Folded cells are the filled window positions behind the head.
		j := w.head - 1 - i
		if j < 0 {
			j += len(w.cells)
		}
		w.m.Sum += w.cells[j]
		w.m.Sumsq += w.sq[j]
	}
	w.cursq += 2*w.cur*o.cur + o.cur*o.cur
	w.cur += o.cur
	w.m.dirty = true
	return nil
}

// RederiveMarker recomputes an a:b percentile marker position directly from
// a frequency array by the bounded walk the one-step rule would converge to:
// start at the smallest present value with the entire remaining mass above,
// and apply the paper's move-up test until it no longer fires. It returns
// the marker position plus the mass strictly below and strictly above it,
// and ok=false on an empty distribution.
//
// The walk visits each value slot at most once, so it is bounded by the
// domain size — controller-side work, like the register pulls it follows.
//
//stat4:reference merging runs controller-side, once per interval, not per packet
func RederiveMarker(freq []uint64, a, b uint64) (idx, low, high uint64, ok bool) {
	var total uint64
	for _, f := range freq {
		total += f
	}
	if total == 0 {
		return 0, 0, 0, false
	}
	for freq[idx] == 0 {
		idx++
	}
	high = total - freq[idx]
	for a*high > b*(low+freq[idx]) && idx+1 < uint64(len(freq)) {
		low += freq[idx]
		idx++
		high -= freq[idx]
	}
	return idx, low, high, true
}

// Rederive repositions the marker from the distribution's current counters
// via RederiveMarker, preserving the Moves counter (marker movement is a
// property of the packet sequence, which rederivation does not replay). An
// empty distribution resets the marker to its uninitialized state.
//
//stat4:reference merging runs controller-side, once per interval, not per packet
func (p *Percentile) Rederive(d *FreqDist) {
	idx, low, high, ok := RederiveMarker(d.freq, p.lowW, p.highW)
	if !ok {
		p.idx, p.low, p.high, p.inited = 0, 0, 0, false
		return
	}
	p.idx, p.low, p.high, p.inited = idx, low, high, true
}

// AddMoves folds another replica's marker-movement count into this marker.
// It is the additive half of a marker merge: positions re-derive from the
// combined counters (Rederive), while movement counts — total marker work
// across replicas, the percentile change rate the paper tracks — simply sum.
//
//stat4:reference merging runs controller-side, once per interval, not per packet
func (p *Percentile) AddMoves(n uint64) { p.moves += n }
