package core

import (
	"errors"
	"math/rand"
	"testing"

	"stat4/internal/baseline"
)

// TestMedianFigure3 reproduces the worked example of Figure 3: values 1..10
// with frequencies {2:10, 3:2, 6:1, 9:5, 10:6}, median marker at 4 with low
// and high counts both 12. Adding an 8 makes the high side heavier; the
// marker needs two packets to travel 4 → 5 → 6, skipping the empty slot.
func TestMedianFigure3(t *testing.T) {
	d := NewFreqDist(11) // domain 0..10; the figure uses values 1..10
	med := d.TrackMedian()

	// Rebuild the figure's state directly, as the paper draws it.
	freq := map[uint64]uint64{2: 10, 3: 2, 6: 1, 9: 5, 10: 6}
	for v, f := range freq {
		d.freq[v] = f
	}
	med.idx, med.low, med.high, med.inited = 4, 12, 12, true

	if err := d.Observe(8); err != nil {
		t.Fatal(err)
	}
	// Moments bookkeeping aside, the marker may move only one slot.
	if med.Value() != 5 {
		t.Fatalf("after first packet marker at %d, want 5", med.Value())
	}
	// A second packet not carrying a value of interest still moves the
	// marker (Section 2: "those packets do contribute to moving the
	// median").
	d.Step()
	if med.Value() != 6 {
		t.Fatalf("after second packet marker at %d, want 6 (Figure 3)", med.Value())
	}
	// Balanced now: further packets leave it in place.
	d.Step()
	if med.Value() != 6 {
		t.Fatalf("marker moved past the median to %d", med.Value())
	}
}

func TestFreqDistMomentsMatchBaseline(t *testing.T) {
	d := NewFreqDist(64)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 5000; i++ {
		if err := d.Observe(uint64(rng.Intn(64))); err != nil {
			t.Fatal(err)
		}
	}
	var distinct, total, sumsq uint64
	for _, f := range d.Frequencies() {
		if f > 0 {
			distinct++
		}
		total += f
		sumsq += f * f
	}
	m := d.Moments()
	if m.N != distinct || m.Sum != total || m.Sumsq != sumsq {
		t.Fatalf("moments (%d,%d,%d), want (%d,%d,%d)", m.N, m.Sum, m.Sumsq, distinct, total, sumsq)
	}
}

// TestFrequenciesCopyIsSafe regression: Frequencies used to return the live
// backing slice, so a caller scribbling on it desynchronized the counters
// from the moments and percentile markers. It must return a copy.
func TestFrequenciesCopyIsSafe(t *testing.T) {
	d := NewFreqDist(16)
	med := d.TrackMedian()
	for i := 0; i < 200; i++ {
		d.Observe(uint64(i % 16))
	}
	before := d.Moments().Sum
	snap := d.Frequencies()
	for i := range snap {
		snap[i] = 0 // a hostile caller
	}
	if d.Freq(3) == 0 {
		t.Fatal("mutating the Frequencies() result reached the tracked counters")
	}
	if got := d.Moments().Sum; got != before {
		t.Fatalf("moments changed under caller mutation: %d != %d", got, before)
	}
	// The markers still step against intact counters.
	d.Observe(15)
	if !med.Initialized() {
		t.Fatal("median marker lost state")
	}
}

func TestFreqDistOutOfRange(t *testing.T) {
	d := NewFreqDist(8)
	if err := d.Observe(8); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("Observe(8) on size-8 domain: err = %v, want ErrOutOfRange", err)
	}
	if err := d.Observe(7); err != nil {
		t.Fatalf("Observe(7) on size-8 domain failed: %v", err)
	}
}

// TestMedianConvergesDense: on a dense distribution the one-step-per-packet
// marker stays within 1% of the exact median after the early sparse phase
// (the Table 3 claim).
func TestMedianConvergesDense(t *testing.T) {
	const n = 1000
	d := NewFreqDist(n)
	med := d.TrackMedian()
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 10*n; i++ {
		if err := d.Observe(uint64(rng.Intn(n))); err != nil {
			t.Fatal(err)
		}
		if i > n/2 {
			exact := baseline.ExactMedian(d.Frequencies())
			diff := int64(med.Value()) - int64(exact)
			if diff < 0 {
				diff = -diff
			}
			if float64(diff)/float64(n) > 0.01 {
				t.Fatalf("at packet %d marker %d vs exact %d: error %.2f%% > 1%%",
					i, med.Value(), exact, 100*float64(diff)/float64(n))
			}
		}
	}
}

// TestPercentile90Converges: the 9:1 weighting tracks the 90th percentile.
func TestPercentile90Converges(t *testing.T) {
	const n = 1000
	d := NewFreqDist(n)
	p90 := d.TrackPercentile(9, 1)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 20*n; i++ {
		if err := d.Observe(uint64(rng.Intn(n))); err != nil {
			t.Fatal(err)
		}
	}
	exact := baseline.ExactPercentile(d.Frequencies(), 90)
	diff := int64(p90.Value()) - int64(exact)
	if diff < 0 {
		diff = -diff
	}
	if float64(diff)/float64(n) > 0.02 {
		t.Fatalf("p90 marker %d vs exact %d: error %.2f%%", p90.Value(), exact, 100*float64(diff)/float64(n))
	}
}

// TestPercentileInvariant property: after every packet, low and high hold
// exactly the combined frequencies below and above the marker.
func TestPercentileCountInvariant(t *testing.T) {
	d := NewFreqDist(50)
	med := d.TrackMedian()
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 3000; i++ {
		if err := d.Observe(uint64(rng.Intn(50))); err != nil {
			t.Fatal(err)
		}
		var low, high uint64
		for v, f := range d.Frequencies() {
			switch {
			case uint64(v) < med.Value():
				low += f
			case uint64(v) > med.Value():
				high += f
			}
		}
		if med.LowCount() != low || med.HighCount() != high {
			t.Fatalf("packet %d: counts (%d,%d), recomputed (%d,%d)",
				i, med.LowCount(), med.HighCount(), low, high)
		}
	}
}

// TestMedianSparseWorstCase: on a two-point distribution at the domain
// extremes the marker drifts one slot per packet, the worst case the paper
// acknowledges ("estimation error … proportional to the size of F").
func TestMedianSparseWorstCase(t *testing.T) {
	const n = 100
	d := NewFreqDist(n)
	med := d.TrackMedian()
	if err := d.Observe(0); err != nil {
		t.Fatal(err)
	}
	// Heavy mass lands at the far end; the marker must walk there.
	for i := 0; i < 10; i++ {
		if err := d.Observe(n - 1); err != nil {
			t.Fatal(err)
		}
	}
	if med.Value() >= n-1 {
		t.Fatal("marker teleported; one-step rule violated")
	}
	steps := 0
	for med.Value() < n-1 && steps < 2*n {
		d.Step()
		steps++
	}
	if med.Value() != n-1 {
		t.Fatalf("marker stuck at %d after %d steps", med.Value(), steps)
	}
	if steps < n-10 {
		t.Fatalf("marker crossed %d slots in %d steps: moved more than one per packet", n, steps)
	}
}

func TestMedianBoundsClamped(t *testing.T) {
	d := NewFreqDist(4)
	med := d.TrackMedian()
	// All mass at the top edge.
	for i := 0; i < 20; i++ {
		if err := d.Observe(3); err != nil {
			t.Fatal(err)
		}
		d.Step()
	}
	if med.Value() != 3 {
		t.Fatalf("marker %d, want clamped at 3", med.Value())
	}
	d.Reset()
	for i := 0; i < 20; i++ {
		if err := d.Observe(0); err != nil {
			t.Fatal(err)
		}
		d.Step()
	}
	if med.Value() != 0 {
		t.Fatalf("marker %d, want clamped at 0", med.Value())
	}
}

func TestFreqDistReset(t *testing.T) {
	d := NewFreqDist(8)
	med := d.TrackMedian()
	for i := 0; i < 10; i++ {
		if err := d.Observe(uint64(i % 8)); err != nil {
			t.Fatal(err)
		}
	}
	d.Reset()
	if d.Moments().N != 0 || med.Initialized() || med.Value() != 0 {
		t.Fatal("Reset left state behind")
	}
	for _, f := range d.Frequencies() {
		if f != 0 {
			t.Fatal("Reset left counters behind")
		}
	}
}

func TestTrackPercentilePanicsOnZeroWeight(t *testing.T) {
	d := NewFreqDist(4)
	defer func() {
		if recover() == nil {
			t.Fatal("TrackPercentile(0,1) did not panic")
		}
	}()
	d.TrackPercentile(0, 1)
}

func TestNewFreqDistPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewFreqDist(0) did not panic")
		}
	}()
	NewFreqDist(0)
}

// TestSettleReachesExactMedian: with unlimited stepping the marker lands on
// the exact balanced position even on sparse distributions — the accuracy a
// recirculating implementation would buy.
func TestSettleReachesExactMedian(t *testing.T) {
	d := NewFreqDist(100)
	med := d.TrackMedian()
	if err := d.Observe(0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := d.Observe(99); err != nil {
			t.Fatal(err)
		}
	}
	steps := med.Settle(d, 1000)
	if med.Value() != 99 {
		t.Fatalf("settled marker at %d, want 99", med.Value())
	}
	if steps == 0 || steps > 100 {
		t.Fatalf("settled in %d steps", steps)
	}
	// Already balanced: no movement.
	if med.Settle(d, 1000) != 0 {
		t.Fatal("balanced marker moved")
	}
}

// TestMedianBurstRecovery pins the one-step-per-packet lag bound the
// telemetry layer leans on: after a burst of N identical values far from the
// marker, the marker has moved at most N slots toward them (one per packet),
// and N further quiet Step calls are enough to finish the walk. Reset must
// restore the marker to its pristine state so a reused histogram re-seeds at
// the first value of the next stream.
func TestMedianBurstRecovery(t *testing.T) {
	const (
		start = uint64(10)
		dest  = uint64(100)
		burst = 50
	)
	d := NewFreqDist(256)
	med := d.TrackMedian()
	if err := d.Observe(start); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < burst; i++ {
		if err := d.Observe(dest); err != nil {
			t.Fatal(err)
		}
	}
	// One move per packet at most: the marker lags, it never jumps.
	if got := med.Value(); got > start+burst {
		t.Fatalf("marker at %d after %d-packet burst from %d: moved more than one slot per packet", got, burst, start)
	}
	if med.Moves() > burst {
		t.Fatalf("Moves = %d after %d observations past the init", med.Moves(), burst)
	}
	// Quiet packets (Step without a value) finish the convergence: the
	// remaining walk is at most burst slots long.
	for i := 0; i < burst; i++ {
		d.Step()
	}
	if med.Value() != dest {
		t.Fatalf("marker at %d after %d quiet steps, want %d", med.Value(), burst, dest)
	}
	if med.LowCount() > 1 || med.HighCount() != 0 {
		t.Fatalf("counts low=%d high=%d at the converged marker", med.LowCount(), med.HighCount())
	}

	// Reset restores the pristine marker...
	d.Reset()
	if med.Initialized() || med.Value() != 0 || med.LowCount() != 0 || med.HighCount() != 0 || med.Moves() != 0 {
		t.Fatalf("Reset left marker state: %+v", med)
	}
	// ...and the next stream re-seeds at its first value.
	if err := d.Observe(7); err != nil {
		t.Fatal(err)
	}
	if !med.Initialized() || med.Value() != 7 {
		t.Fatalf("marker did not re-seed after Reset: inited=%v value=%d", med.Initialized(), med.Value())
	}
}
