package core

import "errors"

// ErrFull is returned when a sample-mode distribution has exhausted its
// counter cells. Stat4 keeps one counter per value (Section 2), so the
// population a distribution can hold is fixed at allocation time.
var ErrFull = errors.New("core: distribution has no free counters")

// SampleDist is a non-frequency distribution: each observed value occupies
// its own counter cell, and the moments grow with every observation
// ("we increase N by 1, and Xsum by xk … adding the square of xk, and store
// xk in a new counter"). It models open-ended collections such as per-prefix
// byte counts bound at runtime.
type SampleDist struct {
	cells []uint64
	n     int
	m     Moments
}

// NewSampleDist returns a sample distribution with the given number of
// counter cells.
func NewSampleDist(capacity int) *SampleDist {
	if capacity <= 0 {
		panic("core: non-positive SampleDist capacity")
	}
	return &SampleDist{cells: make([]uint64, capacity)}
}

// Capacity returns the total number of counter cells.
func (d *SampleDist) Capacity() int { return len(d.cells) }

// Len returns the number of stored samples.
func (d *SampleDist) Len() int { return d.n }

// Moments returns the distribution's scaled moments.
func (d *SampleDist) Moments() *Moments { return &d.m }

// Samples returns the stored sample values (read-only for callers).
func (d *SampleDist) Samples() []uint64 { return d.cells[:d.n] }

// Observe stores a new sample and folds it into the moments. It returns
// ErrFull when every cell is occupied.
//
//stat4:datapath
func (d *SampleDist) Observe(x uint64) error {
	if d.n == len(d.cells) {
		// Bare sentinel: wrapping would allocate per rejected observation.
		return ErrFull
	}
	d.cells[d.n] = x
	d.n++
	d.m.AddSample(x)
	return nil
}

// AddAt increases the sample at index i by delta, updating the moments with
// the (x+δ)² identity. This is how per-key accumulators (e.g. bytes per /24
// subnet) grow while remaining a sample-mode distribution over keys.
//
//stat4:datapath
func (d *SampleDist) AddAt(i int, delta uint64) error {
	if i < 0 || i >= d.n {
		return ErrOutOfRange
	}
	x := d.cells[i]
	d.cells[i] = x + delta
	d.m.Sum += delta
	d.m.Sumsq += 2*x*delta + delta*delta
	d.m.dirty = true
	return nil
}

// Reset clears all samples and moments.
func (d *SampleDist) Reset() {
	for i := range d.cells[:d.n] {
		d.cells[i] = 0
	}
	d.n = 0
	d.m.Reset()
}
