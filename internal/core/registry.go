package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Config mirrors the two compiler macros that size the P4 library's register
// arrays: CounterNum bounds how many distributions can be tracked
// simultaneously (STAT_COUNTER_NUM) and CounterSize bounds the number of
// counter cells per distribution (STAT_COUNTER_SIZE).
type Config struct {
	CounterNum  int
	CounterSize int
}

// DefaultConfig matches the case-study application's defaults: up to 8
// simultaneous distributions of up to 256 cells each.
var DefaultConfig = Config{CounterNum: 8, CounterSize: 256}

// ErrRegistryFull is returned when every distribution slot is in use.
var ErrRegistryFull = errors.New("core: all distribution slots in use")

// ErrTooLarge is returned when a requested distribution exceeds CounterSize.
var ErrTooLarge = errors.New("core: distribution exceeds configured counter size")

// ErrNotFound is returned when looking up a distribution name that is not
// currently tracked.
var ErrNotFound = errors.New("core: no such distribution")

// Kind identifies the update semantics of a tracked distribution.
type Kind int

// Distribution kinds.
const (
	KindFrequency Kind = iota // counters indexed by value, N = distinct values
	KindSample                // one counter per sample, N = sample count
	KindWindow                // circular buffer over time intervals
)

// String returns the kind's name.
func (k Kind) String() string {
	switch k {
	case KindFrequency:
		return "frequency"
	case KindSample:
		return "sample"
	case KindWindow:
		return "window"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Instance is one tracked distribution in a Registry. Exactly one of Freq,
// Sample or Win is non-nil, matching Kind.
type Instance struct {
	Name   string
	Kind   Kind
	Freq   *FreqDist
	Sample *SampleDist
	Win    *Window
}

// Cells returns the number of counter cells the instance occupies.
func (in *Instance) Cells() int {
	switch in.Kind {
	case KindFrequency:
		return in.Freq.Size()
	case KindSample:
		return in.Sample.Capacity()
	case KindWindow:
		// Window keeps a squared shadow per cell.
		return 2 * in.Win.Capacity()
	default:
		return 0
	}
}

// Moments returns the instance's moments regardless of kind.
func (in *Instance) Moments() *Moments {
	switch in.Kind {
	case KindFrequency:
		return in.Freq.Moments()
	case KindSample:
		return in.Sample.Moments()
	case KindWindow:
		return in.Win.Moments()
	default:
		return nil
	}
}

// Registry manages the set of simultaneously tracked distributions under a
// Config's resource limits, and supports adding and removing distributions at
// runtime — the library's "runtime tuning of values of interest" without
// recompilation. It is safe for concurrent use so a controller goroutine can
// retune while the data path observes.
type Registry struct {
	mu   sync.RWMutex
	cfg  Config
	byNm map[string]*Instance
}

// NewRegistry returns an empty registry under the given limits. A zero
// Config falls back to DefaultConfig values field by field.
func NewRegistry(cfg Config) *Registry {
	if cfg.CounterNum <= 0 {
		cfg.CounterNum = DefaultConfig.CounterNum
	}
	if cfg.CounterSize <= 0 {
		cfg.CounterSize = DefaultConfig.CounterSize
	}
	return &Registry{cfg: cfg, byNm: make(map[string]*Instance)}
}

// Config returns the registry's resource limits.
func (r *Registry) Config() Config { return r.cfg }

func (r *Registry) reserve(name string, cells int) error {
	if len(r.byNm) >= r.cfg.CounterNum {
		return fmt.Errorf("%w (%d)", ErrRegistryFull, r.cfg.CounterNum)
	}
	if cells > r.cfg.CounterSize {
		return fmt.Errorf("%w: %d > %d", ErrTooLarge, cells, r.cfg.CounterSize)
	}
	if _, dup := r.byNm[name]; dup {
		return fmt.Errorf("core: distribution %q already tracked", name)
	}
	return nil
}

// CreateFrequency starts tracking a frequency distribution over [0, size).
func (r *Registry) CreateFrequency(name string, size int) (*FreqDist, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.reserve(name, size); err != nil {
		return nil, err
	}
	d := NewFreqDist(size)
	r.byNm[name] = &Instance{Name: name, Kind: KindFrequency, Freq: d}
	return d, nil
}

// CreateSample starts tracking a sample distribution with the given capacity.
func (r *Registry) CreateSample(name string, capacity int) (*SampleDist, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.reserve(name, capacity); err != nil {
		return nil, err
	}
	d := NewSampleDist(capacity)
	r.byNm[name] = &Instance{Name: name, Kind: KindSample, Sample: d}
	return d, nil
}

// CreateWindow starts tracking a circular window over the given number of
// intervals.
func (r *Registry) CreateWindow(name string, intervals int) (*Window, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.reserve(name, 2*intervals); err != nil {
		return nil, err
	}
	w := NewWindow(intervals)
	r.byNm[name] = &Instance{Name: name, Kind: KindWindow, Win: w}
	return w, nil
}

// Remove stops tracking a distribution, freeing its slot for runtime
// retuning.
func (r *Registry) Remove(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.byNm[name]; !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	delete(r.byNm, name)
	return nil
}

// Get returns the named instance.
func (r *Registry) Get(name string) (*Instance, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	in, ok := r.byNm[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	return in, nil
}

// Names returns the tracked distribution names in sorted order.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.byNm))
	for n := range r.byNm {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// CellsInUse returns the total number of counter cells currently allocated,
// the registry's contribution to the resource report.
func (r *Registry) CellsInUse() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	total := 0
	for _, in := range r.byNm {
		total += in.Cells()
	}
	return total
}
