package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// --- helpers -------------------------------------------------------------

// shardStream deals stream into k shards by an arbitrary assignment derived
// from the rng, mimicking an RSS dispatcher: every element lands in exactly
// one shard, order within a shard preserved.
func shardStream(stream []uint64, k int, rng *rand.Rand) [][]uint64 {
	shards := make([][]uint64, k)
	for _, v := range stream {
		s := rng.Intn(k)
		shards[s] = append(shards[s], v)
	}
	return shards
}

func freqFromStream(size int, stream []uint64, pcts [][2]uint64) (*FreqDist, []*Percentile) {
	d := NewFreqDist(size)
	ps := make([]*Percentile, len(pcts))
	for i, ab := range pcts {
		ps[i] = d.TrackPercentile(ab[0], ab[1])
	}
	for _, v := range stream {
		if err := d.Observe(v % uint64(size)); err != nil {
			panic(err)
		}
	}
	return d, ps
}

func momentsEqual(a, b *Moments) bool {
	return a.N == b.N && a.Sum == b.Sum && a.Sumsq == b.Sumsq
}

// --- Moments merge laws --------------------------------------------------

func TestMomentsMergeMatchesSerial(t *testing.T) {
	f := func(xs []uint16, split uint8) bool {
		if len(xs) == 0 {
			return true
		}
		cut := int(split) % (len(xs) + 1)
		var serial, a, b Moments
		for _, x := range xs {
			serial.AddSample(uint64(x))
		}
		for _, x := range xs[:cut] {
			a.AddSample(uint64(x))
		}
		for _, x := range xs[cut:] {
			b.AddSample(uint64(x))
		}
		a.MergeFrom(&b)
		return momentsEqual(&a, &serial) &&
			a.Variance() == serial.Variance() && a.StdDev() == serial.StdDev()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMomentsMergeCommutative(t *testing.T) {
	f := func(n1, s1, q1, n2, s2, q2 uint32) bool {
		a := NewMoments(uint64(n1), uint64(s1), uint64(q1))
		b := NewMoments(uint64(n2), uint64(s2), uint64(q2))
		ab, ba := a, b
		ab.MergeFrom(&b)
		ba.MergeFrom(&a)
		return momentsEqual(&ab, &ba)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMomentsMergeAssociative(t *testing.T) {
	f := func(vals [9]uint32) bool {
		m := func(i int) Moments {
			return NewMoments(uint64(vals[3*i]), uint64(vals[3*i+1]), uint64(vals[3*i+2]))
		}
		// (a⊕b)⊕c
		l1, l2 := m(0), m(1)
		l1.MergeFrom(&l2)
		lc := m(2)
		l1.MergeFrom(&lc)
		// a⊕(b⊕c)
		r2, r3 := m(1), m(2)
		r2.MergeFrom(&r3)
		r1 := m(0)
		r1.MergeFrom(&r2)
		return momentsEqual(&l1, &r1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// --- FreqDist merge laws -------------------------------------------------

// TestFreqDistMergeShardsMatchSerial is the central merge law: dealing a
// stream across K shards and merging equals serial processing, exactly for
// counters and moments, with markers landing on a valid equilibrium.
func TestFreqDistMergeShardsMatchSerial(t *testing.T) {
	const size = 64
	rng := rand.New(rand.NewSource(4))
	pcts := [][2]uint64{{1, 1}, {99, 1}, {1, 9}}
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(400)
		k := 1 + rng.Intn(8)
		stream := make([]uint64, n)
		for i := range stream {
			stream[i] = uint64(rng.Intn(size))
		}
		serial, _ := freqFromStream(size, stream, pcts)
		shards := shardStream(stream, k, rng)

		merged, mps := freqFromStream(size, shards[0], pcts)
		for _, part := range shards[1:] {
			sd, _ := freqFromStream(size, part, pcts)
			if err := merged.MergeFrom(sd); err != nil {
				t.Fatalf("trial %d: merge: %v", trial, err)
			}
		}

		for v := 0; v < size; v++ {
			if merged.Freq(uint64(v)) != serial.Freq(uint64(v)) {
				t.Fatalf("trial %d: freq[%d] = %d, serial %d", trial, v, merged.Freq(uint64(v)), serial.Freq(uint64(v)))
			}
		}
		if !momentsEqual(merged.Moments(), serial.Moments()) {
			t.Fatalf("trial %d: moments %+v, serial %+v", trial, merged.Moments(), serial.Moments())
		}
		if merged.Moments().Variance() != serial.Moments().Variance() {
			t.Fatalf("trial %d: variance mismatch", trial)
		}
		// k == 1 means no merge ran: the marker is the serial one-step
		// marker, which may lag behind equilibrium by design. Only merged
		// (rederived) markers promise equilibrium.
		for i, p := range mps {
			checkMarkerInvariants(t, merged, p, pcts[i][0], pcts[i][1], k > 1)
		}
	}
}

// checkMarkerInvariants asserts the structural facts every valid marker
// state satisfies: the bookkept low/high masses tile the distribution
// around idx, and the move-up rule is at equilibrium — the same invariants
// the serial one-step rule maintains per packet. (A marker may rest on an
// empty slot: the serial rule, too, moves one slot at a time regardless of
// the destination's frequency.)
func checkMarkerInvariants(t *testing.T, d *FreqDist, p *Percentile, a, b uint64, rederived bool) {
	t.Helper()
	total := d.Moments().Sum
	if total == 0 {
		if p.Initialized() {
			t.Fatalf("marker initialized on empty distribution")
		}
		return
	}
	if !p.Initialized() {
		t.Fatalf("marker uninitialized on non-empty distribution")
	}
	f := d.Freq(p.Value())
	if p.LowCount()+f+p.HighCount() != total {
		t.Fatalf("marker %d:%d mass split %d+%d+%d != %d", a, b, p.LowCount(), f, p.HighCount(), total)
	}
	var below uint64
	for v := uint64(0); v < p.Value(); v++ {
		below += d.Freq(v)
	}
	if below != p.LowCount() {
		t.Fatalf("marker %d:%d low=%d but true mass below is %d", a, b, p.LowCount(), below)
	}
	if rederived && a*p.HighCount() > b*(p.LowCount()+f) && p.Value()+1 < uint64(d.Size()) {
		t.Fatalf("marker %d:%d not at equilibrium: would still move up from %d", a, b, p.Value())
	}
}

func TestFreqDistMergeCommutative(t *testing.T) {
	const size = 32
	f := func(xs, ys []uint8) bool {
		mk := func(vals []uint8) *FreqDist {
			d := NewFreqDist(size)
			d.TrackMedian()
			for _, v := range vals {
				_ = d.Observe(uint64(v) % size)
			}
			return d
		}
		ab, b := mk(xs), mk(ys)
		ba, a := mk(ys), mk(xs)
		if ab.MergeFrom(b) != nil || ba.MergeFrom(a) != nil {
			return false
		}
		for v := uint64(0); v < size; v++ {
			if ab.Freq(v) != ba.Freq(v) {
				return false
			}
		}
		return momentsEqual(ab.Moments(), ba.Moments()) &&
			ab.pct[0].idx == ba.pct[0].idx &&
			ab.pct[0].low == ba.pct[0].low &&
			ab.pct[0].high == ba.pct[0].high
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFreqDistMergeAssociative(t *testing.T) {
	const size = 32
	f := func(xs, ys, zs []uint8) bool {
		mk := func(vals []uint8) *FreqDist {
			d := NewFreqDist(size)
			for _, v := range vals {
				_ = d.Observe(uint64(v) % size)
			}
			return d
		}
		// (x⊕y)⊕z
		l := mk(xs)
		if l.MergeFrom(mk(ys)) != nil || l.MergeFrom(mk(zs)) != nil {
			return false
		}
		// x⊕(y⊕z)
		r, yz := mk(xs), mk(ys)
		if yz.MergeFrom(mk(zs)) != nil || r.MergeFrom(yz) != nil {
			return false
		}
		for v := uint64(0); v < size; v++ {
			if l.Freq(v) != r.Freq(v) {
				return false
			}
		}
		return momentsEqual(l.Moments(), r.Moments())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFreqDistMergeShapeMismatch(t *testing.T) {
	a, b := NewFreqDist(8), NewFreqDist(16)
	_ = a.Observe(3)
	if err := a.MergeFrom(b); err == nil {
		t.Fatal("expected shape mismatch error")
	}
	if a.Freq(3) != 1 || a.Moments().N != 1 {
		t.Fatal("failed merge mutated the destination")
	}
}

// --- marker rederivation -------------------------------------------------

func TestRederiveMarkerEmpty(t *testing.T) {
	if _, _, _, ok := RederiveMarker(make([]uint64, 8), 1, 1); ok {
		t.Fatal("rederive on empty distribution reported ok")
	}
	d := NewFreqDist(8)
	p := d.TrackMedian()
	p.Rederive(d)
	if p.Initialized() {
		t.Fatal("rederive on empty distribution left marker initialized")
	}
}

// TestRederiveMarkerMatchesSettle: on a static distribution, the bounded
// walk lands where a serial marker would settle given unlimited steps —
// both are equilibria of the same rule, reached from the low end.
func TestRederiveMarkerMatchesSettle(t *testing.T) {
	const size = 48
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		freq := make([]uint64, size)
		n := 1 + rng.Intn(300)
		for i := 0; i < n; i++ {
			freq[rng.Intn(size)]++
		}
		for _, ab := range [][2]uint64{{1, 1}, {9, 1}, {1, 3}} {
			idx, low, high, ok := RederiveMarker(freq, ab[0], ab[1])
			if !ok {
				t.Fatalf("trial %d: unexpectedly empty", trial)
			}
			var total, below uint64
			for _, f := range freq {
				total += f
			}
			for v := uint64(0); v < idx; v++ {
				below += freq[v]
			}
			if below != low || total-below-freq[idx] != high {
				t.Fatalf("trial %d %d:%d: mass bookkeeping off", trial, ab[0], ab[1])
			}
			if ab[0]*high > ab[1]*(low+freq[idx]) && idx+1 < size {
				t.Fatalf("trial %d %d:%d: walk stopped before equilibrium", trial, ab[0], ab[1])
			}
		}
	}
}

// --- SampleDist ----------------------------------------------------------

func TestSampleDistMergeMatchesSerial(t *testing.T) {
	f := func(xs []uint16, split uint8) bool {
		if len(xs) == 0 {
			return true
		}
		cut := int(split) % (len(xs) + 1)
		serial := NewSampleDist(len(xs))
		for _, x := range xs {
			if serial.Observe(uint64(x)) != nil {
				return false
			}
		}
		a, b := NewSampleDist(len(xs)), NewSampleDist(len(xs))
		for _, x := range xs[:cut] {
			_ = a.Observe(uint64(x))
		}
		for _, x := range xs[cut:] {
			_ = b.Observe(uint64(x))
		}
		if a.MergeFrom(b) != nil {
			return false
		}
		if a.Len() != serial.Len() || !momentsEqual(a.Moments(), serial.Moments()) {
			return false
		}
		for i, v := range serial.Samples() {
			if a.Samples()[i] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSampleDistMergeCapacity(t *testing.T) {
	a, b := NewSampleDist(3), NewSampleDist(3)
	for i := 0; i < 2; i++ {
		_ = a.Observe(1)
		_ = b.Observe(2)
	}
	if err := a.MergeFrom(b); err == nil {
		t.Fatal("expected capacity error")
	}
	if a.Len() != 2 || a.Moments().Sum != 2 {
		t.Fatal("failed merge mutated the destination")
	}
}

// --- Window --------------------------------------------------------------

// TestWindowMergeMatchesSerial drives K windows in tick lockstep (the
// shared-clock contract) with per-interval deltas dealt across shards, and
// checks the merged window equals the single window that saw every delta.
func TestWindowMergeMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		capacity := 1 + rng.Intn(8)
		k := 1 + rng.Intn(4)
		intervals := rng.Intn(3 * capacity)
		serial := NewWindow(capacity)
		shards := make([]*Window, k)
		for i := range shards {
			shards[i] = NewWindow(capacity)
		}
		for iv := 0; iv < intervals; iv++ {
			adds := rng.Intn(20)
			for a := 0; a < adds; a++ {
				delta := uint64(rng.Intn(100))
				serial.Add(delta)
				shards[rng.Intn(k)].Add(delta)
			}
			serial.Tick()
			for _, s := range shards {
				s.Tick()
			}
		}
		// Leave some in-progress traffic un-ticked too.
		for a := 0; a < rng.Intn(10); a++ {
			delta := uint64(rng.Intn(100))
			serial.Add(delta)
			shards[rng.Intn(k)].Add(delta)
		}

		merged := shards[0]
		for _, s := range shards[1:] {
			if err := merged.MergeFrom(s); err != nil {
				t.Fatalf("trial %d: merge: %v", trial, err)
			}
		}
		if merged.Filled() != serial.Filled() || merged.Current() != serial.Current() {
			t.Fatalf("trial %d: filled/current mismatch", trial)
		}
		for i := range serial.Cells() {
			if merged.Cells()[i] != serial.Cells()[i] {
				t.Fatalf("trial %d: cell %d = %d, serial %d", trial, i, merged.Cells()[i], serial.Cells()[i])
			}
		}
		if !momentsEqual(merged.Moments(), serial.Moments()) {
			t.Fatalf("trial %d: moments %+v, serial %+v", trial, merged.Moments(), serial.Moments())
		}
		if merged.Moments().Variance() != serial.Moments().Variance() {
			t.Fatalf("trial %d: variance mismatch", trial)
		}
	}
}

func TestWindowMergeMisaligned(t *testing.T) {
	a, b := NewWindow(4), NewWindow(4)
	a.Add(1)
	a.Tick() // a: head 1, filled 1; b: head 0, filled 0
	if err := a.MergeFrom(b); err == nil {
		t.Fatal("expected alignment error for differing head/filled")
	}
	c := NewWindow(8)
	if err := a.MergeFrom(c); err == nil {
		t.Fatal("expected capacity mismatch error")
	}
}
