package core

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSparseMatchesDenseOnSmallDomain(t *testing.T) {
	// With plenty of buckets, the sparse distribution's moments must equal
	// a dense FreqDist fed the same stream.
	dense := NewFreqDist(64)
	sparse := NewSparseFreqDist(1024, 2)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 20000; i++ {
		v := uint64(rng.Intn(64))
		if err := dense.Observe(v); err != nil {
			t.Fatal(err)
		}
		if err := sparse.Observe(v); err != nil {
			t.Fatal(err)
		}
	}
	dm, sm := dense.Moments(), sparse.Moments()
	if dm.N != sm.N || dm.Sum != sm.Sum || dm.Sumsq != sm.Sumsq {
		t.Fatalf("sparse (%d,%d,%d) vs dense (%d,%d,%d)",
			sm.N, sm.Sum, sm.Sumsq, dm.N, dm.Sum, dm.Sumsq)
	}
	if sparse.Rejected != 0 {
		t.Fatalf("%d rejections with 16x headroom", sparse.Rejected)
	}
	for v := uint64(0); v < 64; v++ {
		if sparse.Count(v) != dense.Freq(v) {
			t.Fatalf("count(%d) = %d, dense %d", v, sparse.Count(v), dense.Freq(v))
		}
	}
}

func TestSparseHugeDomain(t *testing.T) {
	// The whole point: a 2^32 key domain with 500 active keys fits in a
	// 2048-bucket table. d-way probing is lossy by nature — at 25% load a
	// 4-way probe rejects a fraction of a percent of keys — so the test
	// asserts near-complete coverage plus exact bookkeeping of the rest.
	d := NewSparseFreqDist(2048, 4)
	rng := rand.New(rand.NewSource(2))
	keys := make([]uint64, 500)
	for i := range keys {
		keys[i] = rng.Uint64() & 0xffffffff
	}
	var accepted uint64
	for i := 0; i < 50000; i++ {
		if err := d.Observe(keys[rng.Intn(len(keys))]); err == nil {
			accepted++
		} else if !errors.Is(err, ErrSparseFull) {
			t.Fatal(err)
		}
	}
	if d.Active() < 495 {
		t.Fatalf("Active = %d, want ≥495 of 500", d.Active())
	}
	if accepted+d.Rejected != 50000 {
		t.Fatalf("accepted %d + rejected %d != 50000", accepted, d.Rejected)
	}
	if d.Rejected > 50000/100 {
		t.Fatalf("%d rejections (>1%%) at 25%% load with 4 ways", d.Rejected)
	}
	if d.Moments().Sum != accepted {
		t.Fatalf("Xsum = %d, want %d", d.Moments().Sum, accepted)
	}
	if d.MemoryCells() != 4096 {
		t.Fatalf("MemoryCells = %d", d.MemoryCells())
	}
}

func TestSparseRejectsWhenFull(t *testing.T) {
	d := NewSparseFreqDist(4, 2)
	filled := 0
	var rejected bool
	for k := uint64(0); k < 64; k++ {
		err := d.Observe(k)
		switch {
		case err == nil:
			filled++
		case errors.Is(err, ErrSparseFull):
			rejected = true
		default:
			t.Fatal(err)
		}
	}
	if !rejected {
		t.Fatal("64 keys into 4 buckets never rejected")
	}
	if filled > 4 {
		t.Fatalf("%d keys accepted into 4 buckets", filled)
	}
	if d.Rejected == 0 {
		t.Fatal("rejections not counted")
	}
	// Established keys keep counting even when the table is full.
	var anyKey uint64
	d.Each(func(k, _ uint64) { anyKey = k })
	before := d.Count(anyKey)
	if err := d.Observe(anyKey); err != nil {
		t.Fatal(err)
	}
	if d.Count(anyKey) != before+1 {
		t.Fatal("established key stopped counting")
	}
}

// TestSparseMomentsInvariant property: moments always equal the from-scratch
// computation over the occupied buckets.
func TestSparseMomentsInvariant(t *testing.T) {
	f := func(raw []uint16) bool {
		d := NewSparseFreqDist(256, 2)
		for _, r := range raw {
			_ = d.Observe(uint64(r % 512)) // rejections allowed
		}
		var n, sum, sumsq uint64
		d.Each(func(_, c uint64) {
			n++
			sum += c
			sumsq += c * c
		})
		m := d.Moments()
		return m.N == n && m.Sum == sum && m.Sumsq == sumsq
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSparseOutlierDetection(t *testing.T) {
	// The load-balancing check works unchanged over hashed buckets.
	d := NewSparseFreqDist(64, 2)
	rng := rand.New(rand.NewSource(3))
	keys := make([]uint64, 8)
	for i := range keys {
		keys[i] = rng.Uint64()
	}
	for round := 0; round < 500; round++ {
		for _, k := range keys {
			if err := d.Observe(k); err != nil {
				t.Fatal(err)
			}
		}
	}
	m := d.Moments()
	if m.IsOutlierAbove(d.Count(keys[0]), 2) {
		t.Fatal("balanced key flagged")
	}
	for i := 0; i < 3000; i++ {
		if err := d.Observe(keys[3]); err != nil {
			t.Fatal(err)
		}
	}
	if !m.IsOutlierAbove(d.Count(keys[3]), 2) {
		t.Fatal("hot key not flagged")
	}
}

func TestSparseReset(t *testing.T) {
	d := NewSparseFreqDist(16, 2)
	if err := d.Observe(42); err != nil {
		t.Fatal(err)
	}
	d.Reset()
	if d.Active() != 0 || d.Count(42) != 0 || d.Moments().Sum != 0 {
		t.Fatal("Reset left state behind")
	}
}

func TestSparseWaysClamping(t *testing.T) {
	if d := NewSparseFreqDist(2, 8); d.Ways() != 2 {
		t.Fatalf("ways = %d, want clamped to 2", d.Ways())
	}
	if d := NewSparseFreqDist(8, 0); d.Ways() != 1 {
		t.Fatalf("ways = %d, want 1", d.Ways())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("zero buckets did not panic")
		}
	}()
	NewSparseFreqDist(0, 1)
}

// TestSparseAssociativityHelps: with 2-way probing a near-full table accepts
// more distinct keys than direct mapping.
func TestSparseAssociativityHelps(t *testing.T) {
	accepted := func(ways int) int {
		d := NewSparseFreqDist(128, ways)
		rng := rand.New(rand.NewSource(4))
		n := 0
		for i := 0; i < 128; i++ {
			if d.Observe(rng.Uint64()) == nil {
				n++
			}
		}
		return n
	}
	oneWay, twoWay := accepted(1), accepted(2)
	if twoWay <= oneWay {
		t.Fatalf("2-way accepted %d, 1-way %d", twoWay, oneWay)
	}
}
