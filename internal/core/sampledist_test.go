package core

import (
	"errors"
	"testing"

	"stat4/internal/baseline"
)

func TestSampleDistObserve(t *testing.T) {
	d := NewSampleDist(8)
	xs := []uint64{4, 9, 4, 25}
	for _, x := range xs {
		if err := d.Observe(x); err != nil {
			t.Fatal(err)
		}
	}
	n, sum, sumsq := baseline.Moments(xs)
	m := d.Moments()
	if m.N != n || m.Sum != sum || m.Sumsq != sumsq {
		t.Fatalf("moments (%d,%d,%d), want (%d,%d,%d)", m.N, m.Sum, m.Sumsq, n, sum, sumsq)
	}
	if d.Len() != 4 || d.Capacity() != 8 {
		t.Fatalf("Len/Capacity = %d/%d", d.Len(), d.Capacity())
	}
}

func TestSampleDistFull(t *testing.T) {
	d := NewSampleDist(2)
	if err := d.Observe(1); err != nil {
		t.Fatal(err)
	}
	if err := d.Observe(2); err != nil {
		t.Fatal(err)
	}
	if err := d.Observe(3); !errors.Is(err, ErrFull) {
		t.Fatalf("overfull Observe err = %v, want ErrFull", err)
	}
}

func TestSampleDistAddAt(t *testing.T) {
	// Per-subnet byte counters: one sample per /24, grown in place.
	d := NewSampleDist(6)
	for i := 0; i < 6; i++ {
		if err := d.Observe(0); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.AddAt(2, 1500); err != nil {
		t.Fatal(err)
	}
	if err := d.AddAt(2, 500); err != nil {
		t.Fatal(err)
	}
	if err := d.AddAt(5, 100); err != nil {
		t.Fatal(err)
	}
	want := []uint64{0, 0, 2000, 0, 0, 100}
	n, sum, sumsq := baseline.Moments(want)
	m := d.Moments()
	if m.N != n || m.Sum != sum || m.Sumsq != sumsq {
		t.Fatalf("moments (%d,%d,%d), want (%d,%d,%d)", m.N, m.Sum, m.Sumsq, n, sum, sumsq)
	}
	if err := d.AddAt(6, 1); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("AddAt(6) err = %v, want ErrOutOfRange", err)
	}
	if err := d.AddAt(-1, 1); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("AddAt(-1) err = %v, want ErrOutOfRange", err)
	}
}

func TestSampleDistImbalanceDetection(t *testing.T) {
	// Load balancing use case (Table 1): traffic across 6 subnets, one hot.
	d := NewSampleDist(6)
	for i := 0; i < 6; i++ {
		if err := d.Observe(0); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 6; i++ {
		if err := d.AddAt(i, 1000); err != nil {
			t.Fatal(err)
		}
	}
	m := d.Moments()
	if m.IsOutlierAbove(1000, 2) {
		t.Fatal("balanced subnet flagged as hot")
	}
	if err := d.AddAt(3, 5000); err != nil {
		t.Fatal(err)
	}
	if !m.IsOutlierAbove(6000, 2) {
		t.Fatal("hot subnet not flagged")
	}
}

func TestSampleDistReset(t *testing.T) {
	d := NewSampleDist(4)
	if err := d.Observe(7); err != nil {
		t.Fatal(err)
	}
	d.Reset()
	if d.Len() != 0 || d.Moments().N != 0 {
		t.Fatal("Reset left state behind")
	}
	if len(d.Samples()) != 0 {
		t.Fatal("Samples not empty after Reset")
	}
}

func TestNewSampleDistPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewSampleDist(-1) did not panic")
		}
	}()
	NewSampleDist(-1)
}
