package core

import (
	"errors"
	"fmt"

	"stat4/internal/p4"
)

// ErrSparseFull is returned when every candidate bucket for a key is
// occupied by other keys.
var ErrSparseFull = errors.New("core: no free bucket for key")

// SparseFreqDist is the Section 5 extension the paper sketches: a frequency
// distribution that does not reserve a counter per possible value but hashes
// keys into a fixed bucket table ("techniques to avoid reserving memory for
// non-observed values (e.g., using hash-tables similarly to [23]) …
// especially beneficial for sparse distributions"). Each key probes `ways`
// buckets (multiply-shift hashes, the kind a switch's hash units provide)
// and claims the first free one; the moments are maintained over bucket
// counts exactly like FreqDist's, so mean/variance/σ and the outlier check
// work unchanged.
//
// What is lost relative to FreqDist is value ordering: buckets are in hash
// order, so the Figure 3 percentile markers do not apply. What is gained is
// memory proportional to the number of *observed* values — the benchmark
// suite quantifies the trade on a 2^20-value domain with a few thousand
// active keys.
//
// Capacity contract: all state is allocated by NewSparseFreqDist and never
// grows afterwards — Observe allocates nothing on any path, Active never
// exceeds Buckets, and MemoryCells is a constant of the configuration. A
// key stream of arbitrary cardinality (millions of distinct flows) is
// absorbed with bounded memory: once every candidate bucket for a key is
// taken, the observation is dropped and tallied in Rejected rather than
// grown into. TestSparseCapacityContract pins all of this against a
// million-flow churning mix.
type SparseFreqDist struct {
	keys   []uint64
	counts []uint64
	used   []bool
	ways   int
	m      Moments

	// Rejected counts observations dropped because all candidate buckets
	// were taken by other keys; the control plane reads it to decide the
	// table is undersized.
	Rejected uint64
}

// NewSparseFreqDist returns a sparse distribution with the given bucket
// count and associativity (ways is clamped to [1, buckets]).
func NewSparseFreqDist(buckets, ways int) *SparseFreqDist {
	if buckets <= 0 {
		panic(fmt.Sprintf("core: non-positive sparse bucket count %d", buckets))
	}
	if ways < 1 {
		ways = 1
	}
	if ways > buckets {
		ways = buckets
	}
	return &SparseFreqDist{
		keys:   make([]uint64, buckets),
		counts: make([]uint64, buckets),
		used:   make([]bool, buckets),
		ways:   ways,
	}
}

// Buckets returns the bucket table size.
func (d *SparseFreqDist) Buckets() int { return len(d.keys) }

// Ways returns the probe associativity.
func (d *SparseFreqDist) Ways() int { return d.ways }

// Moments returns the distribution's scaled moments over bucket counts.
func (d *SparseFreqDist) Moments() *Moments { return &d.m }

// probe returns the bucket index for the w-th hash of key, using the same
// hash family as the switch simulator's hash engine so the reference and the
// emitted program place keys identically. Power-of-two tables mask (what a
// P4 target does); other sizes reduce modulo — a host-side convenience: the
// emitted programs always size tables to powers of two.
//
//stat4:datapath
func (d *SparseFreqDist) probe(key uint64, w int) int {
	h := p4.HashValue(w, key)
	n := uint64(len(d.keys))
	if n&(n-1) == 0 {
		return int(h & (n - 1))
	}
	return int(h % n) //stat4:exempt:nodivide host-only path: emitted programs use power-of-two tables, masked above
}

// locate finds the bucket holding key, or a free candidate, or neither.
//
//stat4:datapath
func (d *SparseFreqDist) locate(key uint64) (idx int, found bool, free int) {
	free = -1
	//stat4:exempt:boundedloop ways is fixed at configuration time; the emitted program unrolls one probe stage per way
	for w := 0; w < d.ways; w++ {
		i := d.probe(key, w)
		if d.used[i] && d.keys[i] == key {
			return i, true, free
		}
		if !d.used[i] && free < 0 {
			free = i
		}
	}
	return -1, false, free
}

// Observe records one occurrence of key. When the key is new it claims a
// free candidate bucket; with none available the observation is rejected and
// counted, since silently aliasing two keys would corrupt the moments.
//
//stat4:datapath
func (d *SparseFreqDist) Observe(key uint64) error {
	idx, found, free := d.locate(key)
	if !found {
		if free < 0 {
			d.Rejected++
			// Bare sentinel: the rejection path runs once per rejected
			// packet under overload, exactly when allocating is worst.
			return ErrSparseFull
		}
		idx = free
		d.used[idx] = true
		d.keys[idx] = key
	}
	f := d.counts[idx]
	d.m.AddFrequency(f, f == 0)
	d.counts[idx] = f + 1
	return nil
}

// Count returns the key's frequency (0 if never observed or rejected).
func (d *SparseFreqDist) Count(key uint64) uint64 {
	if idx, found, _ := d.locate(key); found {
		return d.counts[idx]
	}
	return 0
}

// Active returns the number of occupied buckets (= distinct observed keys).
func (d *SparseFreqDist) Active() int { return int(d.m.N) }

// Each calls fn for every occupied bucket. Iteration order is hash order.
func (d *SparseFreqDist) Each(fn func(key, count uint64)) {
	for i, u := range d.used {
		if u {
			fn(d.keys[i], d.counts[i])
		}
	}
}

// Reset clears all buckets and moments.
func (d *SparseFreqDist) Reset() {
	for i := range d.keys {
		d.keys[i], d.counts[i], d.used[i] = 0, 0, false
	}
	d.m.Reset()
	d.Rejected = 0
}

// MemoryCells returns the state the distribution occupies, in register
// cells: a key, a count and a valid bit per bucket (the valid bit rides in
// the key register on a real target). Compare with a dense FreqDist's one
// cell per possible value.
func (d *SparseFreqDist) MemoryCells() int { return 2 * len(d.keys) }
