package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"stat4/internal/baseline"
)

func TestMomentsAddSample(t *testing.T) {
	var m Moments
	xs := []uint64{2, 5, 7, 7, 11}
	for _, x := range xs {
		m.AddSample(x)
	}
	n, sum, sumsq := baseline.Moments(xs)
	if m.N != n || m.Sum != sum || m.Sumsq != sumsq {
		t.Fatalf("moments (%d,%d,%d), want (%d,%d,%d)", m.N, m.Sum, m.Sumsq, n, sum, sumsq)
	}
	if m.Mean() != sum {
		t.Fatalf("Mean() = %d, want Xsum = %d", m.Mean(), sum)
	}
}

// TestVarianceMatchesDefinition property: N·Xsumsq − Xsum² equals N² times
// the population variance of X (the paper's scaled-variance identity),
// checked against Welford in float space.
func TestVarianceMatchesDefinition(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		var m Moments
		var w baseline.Welford
		for _, r := range raw {
			m.AddSample(uint64(r))
			w.Add(float64(r))
		}
		want := float64(len(raw)) * float64(len(raw)) * w.Variance()
		got := float64(m.Variance())
		// Integer vs float rounding only; tolerance proportional to scale.
		return math.Abs(got-want) <= 1e-6*math.Max(1, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestVarianceNonNegative property: the Cauchy–Schwarz inequality holds in
// the integer computation for any sample set.
func TestVarianceNonNegative(t *testing.T) {
	f := func(raw []uint16) bool {
		var m Moments
		for _, r := range raw {
			m.AddSample(uint64(r))
		}
		if m.N == 0 {
			return m.Variance() == 0
		}
		v := m.Variance()
		return v <= ^uint64(0) // always true; the real check is no panic/wrap below
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
	// All-equal samples must give exactly zero variance.
	var m Moments
	for i := 0; i < 100; i++ {
		m.AddSample(42)
	}
	if v := m.Variance(); v != 0 {
		t.Fatalf("variance of constant distribution = %d, want 0", v)
	}
}

func TestVarianceSaturatesInsteadOfWrapping(t *testing.T) {
	m := Moments{N: 1 << 40, Sumsq: 1 << 40}
	if v := m.Variance(); v != ^uint64(0) {
		t.Fatalf("overflowing variance = %d, want saturation", v)
	}
}

func TestStdDevLazy(t *testing.T) {
	var m Moments
	m.AddSample(1)
	m.AddSample(9)
	sd1 := m.StdDev()
	for i := 0; i < 10; i++ {
		if m.StdDev() != sd1 {
			t.Fatal("cached sd changed without new data")
		}
	}
	if m.SDRecomputes != 1 {
		t.Fatalf("sd recomputed %d times for 11 reads of unchanged moments, want 1", m.SDRecomputes)
	}
	m.AddSample(100)
	_ = m.StdDev()
	if m.SDRecomputes != 2 {
		t.Fatalf("sd recomputed %d times after second change, want 2", m.SDRecomputes)
	}
}

func TestStdDevEager(t *testing.T) {
	var m Moments
	m.AddSample(1)
	m.AddSample(9)
	for i := 0; i < 5; i++ {
		m.StdDevEager()
	}
	if m.SDRecomputes != 5 {
		t.Fatalf("eager sd recomputed %d times for 5 reads, want 5", m.SDRecomputes)
	}
	if m.StdDevEager() != m.StdDev() {
		t.Fatal("eager and lazy sd disagree")
	}
}

// TestOutlierAgainstFloat property: the integer outlier test agrees with the
// float computation N·x ≷ Xsum + k·σ(NX) up to the sqrt approximation, so we
// compare against the float test that uses the same approximate σ.
func TestOutlierAgainstFloat(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		var m Moments
		for i := 0; i < 50; i++ {
			m.AddSample(uint64(100 + rng.Intn(20)))
		}
		for probe := uint64(50); probe < 200; probe += 7 {
			want := float64(m.N)*float64(probe) > float64(m.Sum)+2*float64(m.StdDev())
			if got := m.IsOutlierAbove(probe, 2); got != want {
				t.Fatalf("IsOutlierAbove(%d) = %v, float says %v (N=%d Sum=%d sd=%d)",
					probe, got, want, m.N, m.Sum, m.StdDev())
			}
			wantLow := float64(m.N)*float64(probe)+2*float64(m.StdDev()) < float64(m.Sum)
			if got := m.IsOutlierBelow(probe, 2); got != wantLow {
				t.Fatalf("IsOutlierBelow(%d) = %v, float says %v", probe, got, wantLow)
			}
		}
	}
}

func TestOutlierDetectsSpike(t *testing.T) {
	var m Moments
	// Stable rate around 100 packets per interval.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		m.AddSample(uint64(95 + rng.Intn(11)))
	}
	if m.IsOutlierAbove(105, 2) {
		t.Fatal("in-range value flagged as outlier")
	}
	if !m.IsOutlierAbove(200, 2) {
		t.Fatal("2x spike not flagged as outlier")
	}
}

func TestMomentsReset(t *testing.T) {
	var m Moments
	m.AddSample(3)
	m.AddSample(4)
	_ = m.StdDev()
	m.Reset()
	if m.N != 0 || m.Sum != 0 || m.Sumsq != 0 || m.Variance() != 0 || m.StdDev() != 0 {
		t.Fatal("Reset left state behind")
	}
}

func TestAddFrequencyIdentity(t *testing.T) {
	// Build a frequency stream and check moments equal the from-scratch
	// definition over the final frequency vector.
	var m Moments
	freq := make([]uint64, 16)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 1000; i++ {
		v := rng.Intn(len(freq))
		m.AddFrequency(freq[v], freq[v] == 0)
		freq[v]++
	}
	var distinct, total, sumsq uint64
	for _, f := range freq {
		if f > 0 {
			distinct++
		}
		total += f
		sumsq += f * f
	}
	if m.N != distinct || m.Sum != total || m.Sumsq != sumsq {
		t.Fatalf("frequency moments (%d,%d,%d), want (%d,%d,%d)",
			m.N, m.Sum, m.Sumsq, distinct, total, sumsq)
	}
}

func TestRemoveSampleInverse(t *testing.T) {
	var m Moments
	m.AddSample(10)
	m.AddSample(20)
	m.AddSample(30)
	m.RemoveSample(20)
	m.N-- // caller-managed population shrink
	var want Moments
	want.AddSample(10)
	want.AddSample(30)
	if m.N != want.N || m.Sum != want.Sum || m.Sumsq != want.Sumsq {
		t.Fatalf("after removal (%d,%d,%d), want (%d,%d,%d)",
			m.N, m.Sum, m.Sumsq, want.N, want.Sum, want.Sumsq)
	}
}

func TestNewMomentsDerivedMeasuresFresh(t *testing.T) {
	m := NewMoments(4, 20, 120)
	// var = 4*120 - 400 = 80; sd must be computed, not a stale zero.
	if m.Variance() != 80 {
		t.Fatalf("Variance = %d", m.Variance())
	}
	if m.StdDev() == 0 {
		t.Fatal("NewMoments sd stale")
	}
}
