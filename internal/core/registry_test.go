package core

import (
	"errors"
	"sync"
	"testing"
)

func TestRegistryLimits(t *testing.T) {
	r := NewRegistry(Config{CounterNum: 2, CounterSize: 16})
	if _, err := r.CreateFrequency("a", 16); err != nil {
		t.Fatal(err)
	}
	if _, err := r.CreateFrequency("b", 17); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized create: err = %v, want ErrTooLarge", err)
	}
	if _, err := r.CreateSample("b", 8); err != nil {
		t.Fatal(err)
	}
	if _, err := r.CreateWindow("c", 4); !errors.Is(err, ErrRegistryFull) {
		t.Fatalf("third create: err = %v, want ErrRegistryFull", err)
	}
}

func TestRegistryRuntimeRetuning(t *testing.T) {
	// The SYN-flood scenario from Section 3: drop general rate tracking to
	// make room for per-target tracking, at runtime.
	r := NewRegistry(Config{CounterNum: 2, CounterSize: 256})
	if _, err := r.CreateWindow("rate", 100); err != nil {
		t.Fatal(err)
	}
	if _, err := r.CreateFrequency("syn-by-dst", 64); err != nil {
		t.Fatal(err)
	}
	if err := r.Remove("rate"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.CreateFrequency("syn-by-port", 128); err != nil {
		t.Fatalf("retuning after Remove failed: %v", err)
	}
	names := r.Names()
	if len(names) != 2 || names[0] != "syn-by-dst" || names[1] != "syn-by-port" {
		t.Fatalf("Names = %v", names)
	}
}

func TestRegistryDuplicateName(t *testing.T) {
	r := NewRegistry(Config{})
	if _, err := r.CreateFrequency("x", 4); err != nil {
		t.Fatal(err)
	}
	if _, err := r.CreateSample("x", 4); err == nil {
		t.Fatal("duplicate name accepted")
	}
}

func TestRegistryGetAndCells(t *testing.T) {
	r := NewRegistry(Config{CounterNum: 4, CounterSize: 256})
	if _, err := r.CreateFrequency("f", 100); err != nil {
		t.Fatal(err)
	}
	if _, err := r.CreateWindow("w", 50); err != nil {
		t.Fatal(err)
	}
	in, err := r.Get("f")
	if err != nil || in.Kind != KindFrequency || in.Cells() != 100 {
		t.Fatalf("Get(f) = %+v, %v", in, err)
	}
	if _, err := r.Get("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get(nope) err = %v", err)
	}
	// Window counts its squared shadow: 2×50 + 100 = 200.
	if got := r.CellsInUse(); got != 200 {
		t.Fatalf("CellsInUse = %d, want 200", got)
	}
	if err := r.Remove("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Remove(nope) err = %v", err)
	}
}

func TestRegistryConcurrentRetuning(t *testing.T) {
	// A controller goroutine retunes while others read; run with -race.
	r := NewRegistry(Config{CounterNum: 64, CounterSize: 64})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			name := string(rune('a' + g))
			for i := 0; i < 200; i++ {
				if _, err := r.CreateFrequency(name, 8); err != nil {
					t.Errorf("create: %v", err)
					return
				}
				_, _ = r.Get(name)
				_ = r.Names()
				_ = r.CellsInUse()
				if err := r.Remove(name); err != nil {
					t.Errorf("remove: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestInstanceMoments(t *testing.T) {
	r := NewRegistry(Config{})
	f, _ := r.CreateFrequency("f", 8)
	if err := f.Observe(3); err != nil {
		t.Fatal(err)
	}
	in, _ := r.Get("f")
	if in.Moments().Sum != 1 {
		t.Fatal("Instance.Moments not wired to the live distribution")
	}
}

func TestKindString(t *testing.T) {
	if KindFrequency.String() != "frequency" || KindSample.String() != "sample" ||
		KindWindow.String() != "window" || Kind(9).String() != "Kind(9)" {
		t.Fatal("Kind.String wrong")
	}
}

func TestRegistryConfigAndInstanceCells(t *testing.T) {
	r := NewRegistry(Config{CounterNum: 3, CounterSize: 100})
	if got := r.Config(); got.CounterNum != 3 || got.CounterSize != 100 {
		t.Fatalf("Config = %+v", got)
	}
	s, _ := r.CreateSample("s", 10)
	if err := s.Observe(2); err != nil {
		t.Fatal(err)
	}
	w, _ := r.CreateWindow("w", 20)
	w.Add(1)
	w.Tick()
	for _, name := range []string{"s", "w"} {
		in, err := r.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		if in.Cells() == 0 || in.Moments() == nil {
			t.Fatalf("instance %q accessors broken", name)
		}
	}
	bad := &Instance{Kind: Kind(7)}
	if bad.Cells() != 0 || bad.Moments() != nil {
		t.Fatal("unknown kind not degenerate")
	}
}
