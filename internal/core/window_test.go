package core

import (
	"math/rand"
	"testing"

	"stat4/internal/baseline"
)

func TestWindowFoldsAtTick(t *testing.T) {
	w := NewWindow(4)
	w.Add(3)
	w.Add(2)
	if w.Moments().N != 0 {
		t.Fatal("in-progress interval leaked into moments")
	}
	v, evicted := w.Tick()
	if v != 5 || evicted {
		t.Fatalf("Tick = (%d,%v), want (5,false)", v, evicted)
	}
	m := w.Moments()
	if m.N != 1 || m.Sum != 5 || m.Sumsq != 25 {
		t.Fatalf("moments (%d,%d,%d), want (1,5,25)", m.N, m.Sum, m.Sumsq)
	}
}

// TestWindowMomentsMatchCells property: at any point, the moments equal the
// from-scratch computation over the live cells.
func TestWindowMomentsMatchCells(t *testing.T) {
	w := NewWindow(10)
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 300; i++ {
		for p := rng.Intn(30); p > 0; p-- {
			w.Add(1)
		}
		w.Tick()
		live := w.Cells()
		if w.Filled() < w.Capacity() {
			live = live[:w.Filled()]
		}
		n, sum, sumsq := baseline.Moments(live)
		m := w.Moments()
		if m.N != n || m.Sum != sum || m.Sumsq != sumsq {
			t.Fatalf("tick %d: moments (%d,%d,%d), want (%d,%d,%d)",
				i, m.N, m.Sum, m.Sumsq, n, sum, sumsq)
		}
	}
}

func TestWindowEviction(t *testing.T) {
	w := NewWindow(3)
	for _, v := range []uint64{10, 20, 30} {
		w.Add(v)
		w.Tick()
	}
	if w.Filled() != 3 {
		t.Fatalf("Filled = %d, want 3", w.Filled())
	}
	w.Add(40)
	if _, evicted := w.Tick(); !evicted {
		t.Fatal("full window did not report eviction")
	}
	// Cells now hold {20, 30, 40}.
	m := w.Moments()
	if m.N != 3 || m.Sum != 90 || m.Sumsq != 400+900+1600 {
		t.Fatalf("post-eviction moments (%d,%d,%d)", m.N, m.Sum, m.Sumsq)
	}
}

func TestWindowAddDeltaSquares(t *testing.T) {
	// Byte-count accumulation: deltas larger than one must keep the squared
	// shadow exact.
	w := NewWindow(2)
	w.Add(100)
	w.Add(250)
	w.Tick()
	if w.Moments().Sumsq != 350*350 {
		t.Fatalf("Sumsq = %d, want %d", w.Moments().Sumsq, 350*350)
	}
}

func TestWindowSpikeDetection(t *testing.T) {
	w := NewWindow(100)
	rng := rand.New(rand.NewSource(2))
	// 100 intervals of stable rate.
	for i := 0; i < 100; i++ {
		for p := 95 + rng.Intn(11); p > 0; p-- {
			w.Add(1)
		}
		if _, anomalous := w.CheckThenTick(2); anomalous {
			t.Fatalf("false positive during stable traffic at interval %d", i)
		}
	}
	// Spike interval: 3x the rate.
	for p := 0; p < 300; p++ {
		w.Add(1)
	}
	if _, anomalous := w.CheckThenTick(2); !anomalous {
		t.Fatal("3x spike not detected in its first interval")
	}
}

func TestWindowNoCheckBeforeTwoIntervals(t *testing.T) {
	w := NewWindow(10)
	w.Add(1000)
	if _, anomalous := w.CheckThenTick(2); anomalous {
		t.Fatal("check fired with zero folded intervals")
	}
	w.Add(1000)
	if _, anomalous := w.CheckThenTick(2); anomalous {
		t.Fatal("check fired with one folded interval")
	}
}

func TestWindowZeroIntervals(t *testing.T) {
	// Idle intervals (zero packets) are legitimate samples.
	w := NewWindow(4)
	for i := 0; i < 6; i++ {
		w.Tick()
	}
	m := w.Moments()
	if m.N != 4 || m.Sum != 0 || m.Sumsq != 0 || m.Variance() != 0 {
		t.Fatalf("idle window moments (%d,%d,%d)", m.N, m.Sum, m.Sumsq)
	}
}

func TestNewWindowPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewWindow(0) did not panic")
		}
	}()
	NewWindow(0)
}

func TestWindowAccessors(t *testing.T) {
	w := NewWindow(4)
	w.Add(5)
	if w.Current() != 5 {
		t.Fatalf("Current = %d", w.Current())
	}
	w.Tick()
	w.Add(3)
	w.Tick()
	// Outlier mirrors Moments.IsOutlierAbove on the folded cells.
	if w.Outlier(4, 2) != w.Moments().IsOutlierAbove(4, 2) {
		t.Fatal("Outlier disagrees with moments")
	}
}
