package core

import "stat4/internal/intstat"

// Window is a sample-mode distribution over the most recent time intervals:
// a circular buffer of counters, one per interval, as used by the case-study
// application ("a circular buffer that by default stores 100 8ms-long time
// intervals"). Packets increment the current interval's counter; at the end
// of each interval Tick folds the completed counter into the moments,
// evicting the oldest counter once the buffer is full.
//
// Folding at interval boundaries rather than per packet is the paper's lazy
// update strategy: every packet touches one counter, while the expensive
// moment and standard-deviation work runs once per interval.
type Window struct {
	cells []uint64
	// sq mirrors cells with the squared counter values. The shadow is what
	// a P4 target maintains incrementally (via the 2x+1 identity) so that
	// evicting the oldest counter never squares a runtime value; keeping it
	// here too makes the reference semantics identical to the emitted IR.
	sq     []uint64
	head   int    // index of the next cell to overwrite
	filled int    // number of folded cells, ≤ len(cells)
	cur    uint64 // accumulator for the in-progress interval
	cursq  uint64 // running square of cur, maintained incrementally
	m      Moments
}

// NewWindow returns a circular window over the given number of intervals.
func NewWindow(intervals int) *Window {
	if intervals <= 0 {
		panic("core: non-positive window size")
	}
	return &Window{
		cells: make([]uint64, intervals),
		sq:    make([]uint64, intervals),
	}
}

// Capacity returns the number of intervals the window holds.
func (w *Window) Capacity() int { return len(w.cells) }

// Filled returns how many intervals have been folded so far, saturating at
// Capacity.
func (w *Window) Filled() int { return w.filled }

// Current returns the accumulator of the in-progress interval.
func (w *Window) Current() uint64 { return w.cur }

// Moments returns the moments over the folded intervals. The in-progress
// interval is not included until Tick folds it.
func (w *Window) Moments() *Moments { return &w.m }

// Cells returns the backing counter array (read-only for callers).
func (w *Window) Cells() []uint64 { return w.cells }

// Add increments the current interval's counter by delta (for example, 1 per
// packet, or the packet length in bytes). The squared shadow advances with
// the (x+δ)² = x² + 2xδ + δ² identity, which for δ known per packet is
// shift-and-add work on a P4 target.
//
//stat4:datapath
func (w *Window) Add(delta uint64) {
	w.cursq += 2*w.cur*delta + delta*delta
	w.cur += delta
}

// Tick closes the current interval: the completed counter is folded into the
// moments, the oldest cell is evicted if the buffer is full, and a fresh
// interval begins. It returns the completed counter value and whether the
// window was already full (so an eviction happened).
//
//stat4:datapath
func (w *Window) Tick() (completed uint64, evicted bool) {
	completed = w.cur
	if w.filled == len(w.cells) {
		old := w.cells[w.head]
		w.m.Sum = intstat.SatSub(w.m.Sum, old)
		w.m.Sumsq = intstat.SatSub(w.m.Sumsq, w.sq[w.head])
		w.m.dirty = true
		evicted = true
	} else {
		w.filled++
		w.m.N++
	}
	w.cells[w.head] = w.cur
	w.sq[w.head] = w.cursq
	w.m.Sum += w.cur
	w.m.Sumsq += w.cursq
	w.m.dirty = true
	// Advance the head with a compare-and-reset rather than a modulo: this
	// is exactly the emitted win_head_wrap action, and P4 has no %.
	w.head++
	if w.head == len(w.cells) {
		w.head = 0
	}
	w.cur, w.cursq = 0, 0
	return completed, evicted
}

// Outlier reports whether the just-completed interval value v is more than k
// standard deviations above the window's mean, the case-study detection
// check. Callers typically invoke it with the value returned by Tick,
// against the moments as they stood before folding — use CheckThenTick for
// that exact sequencing.
//
//stat4:datapath
func (w *Window) Outlier(v, k uint64) bool {
	return w.m.IsOutlierAbove(v, k)
}

// CheckThenTick runs the detection check against the stored distribution and
// then folds the interval, matching the switch behaviour: "continuously
// checking if in any interval, the rate is higher than the mean of the
// stored distribution plus two standard deviations". The check is skipped
// (returns false) until the window has folded at least two intervals, since
// a variance needs two samples to mean anything.
//
//stat4:datapath
func (w *Window) CheckThenTick(k uint64) (value uint64, anomalous bool) {
	v := w.cur
	if w.filled >= 2 {
		anomalous = w.m.IsOutlierAbove(v, k)
	}
	w.Tick()
	return v, anomalous
}
