package core

import (
	"math"
	"math/rand"
	"testing"

	"stat4/internal/baseline"
)

// entropyBits converts the tracker state to float bits for comparison:
// H = ScaledBits / (T·2^frac).
func entropyBits(e *Entropy, total uint64) float64 {
	if total == 0 {
		return 0
	}
	return float64(e.ScaledBits(total)) / (float64(total) * float64(uint64(1)<<e.Frac()))
}

// TestEntropyVsBaseline checks the fixed-point tracker against the float64
// ground truth on characteristic shapes: uniform (maximum entropy), single
// value (zero), and skewed mixes.
func TestEntropyVsBaseline(t *testing.T) {
	const frac = 16
	shapes := map[string]func(d *FreqDist){
		"uniform": func(d *FreqDist) {
			for i := 0; i < 64; i++ {
				for k := 0; k < 10; k++ {
					d.Observe(uint64(i))
				}
			}
		},
		"single": func(d *FreqDist) {
			for k := 0; k < 640; k++ {
				d.Observe(7)
			}
		},
		"skewed": func(d *FreqDist) {
			r := rand.New(rand.NewSource(1))
			for k := 0; k < 2000; k++ {
				v := uint64(r.Intn(8))
				if r.Intn(4) == 0 {
					v = uint64(r.Intn(64))
				}
				d.Observe(v)
			}
		},
	}
	for name, fill := range shapes {
		d := NewFreqDist(64)
		e := d.TrackEntropy(frac)
		fill(d)
		total := d.Moments().Sum
		got := entropyBits(e, total)
		want := baseline.Entropy(d.Frequencies())
		// The per-cell log undershoots by < 0.0861 bits; the weighted
		// combination of undershoots stays within twice that.
		if math.Abs(got-want) > 0.18 {
			t.Errorf("%s: entropy ≈ %.4f bits, baseline %.4f", name, got, want)
		}
		if name == "single" && e.ScaledBits(total) != 0 {
			t.Errorf("single value: ScaledBits = %d, want exactly 0", e.ScaledBits(total))
		}
	}
}

// TestEntropyIncrementalMatchesRederive property: after any observation
// sequence the incrementally maintained accumulator equals a from-scratch
// recompute, bit for bit — the identity the shard-merge path relies on.
func TestEntropyIncrementalMatchesRederive(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		d := NewFreqDist(32)
		e := d.TrackEntropy(12)
		n := r.Intn(500)
		for i := 0; i < n; i++ {
			d.Observe(uint64(r.Intn(32)))
		}
		var ref Entropy
		ref.frac = 12
		ref.Rederive(d.Frequencies())
		if e.Sum() != ref.Sum() {
			t.Fatalf("trial %d: incremental S = %d, rederived %d", trial, e.Sum(), ref.Sum())
		}
	}
}

// TestEntropyMergeExact property: shard two streams, merge, and the
// accumulator equals the serial run's, bit for bit.
func TestEntropyMergeExact(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		serial := NewFreqDist(48)
		se := serial.TrackEntropy(16)
		a, b := NewFreqDist(48), NewFreqDist(48)
		ae := a.TrackEntropy(16)
		b.TrackEntropy(16)
		for i := 0; i < 400; i++ {
			v := uint64(r.Intn(48))
			serial.Observe(v)
			if v%2 == 0 {
				a.Observe(v)
			} else {
				b.Observe(v)
			}
		}
		if err := a.MergeFrom(b); err != nil {
			t.Fatal(err)
		}
		if ae.Sum() != se.Sum() {
			t.Fatalf("trial %d: merged S = %d, serial %d", trial, ae.Sum(), se.Sum())
		}
	}
}

// TestEntropyBelow pins the detection predicate: a uniform spread is not
// "below" a mid-range threshold, a concentrated distribution is.
func TestEntropyBelow(t *testing.T) {
	const frac = 16
	uniform := NewFreqDist(64)
	ue := uniform.TrackEntropy(frac)
	conc := NewFreqDist(64)
	ce := conc.TrackEntropy(frac)
	for i := 0; i < 64*20; i++ {
		uniform.Observe(uint64(i % 64))
		conc.Observe(3)
	}
	// Threshold: 3 bits (half of log2(64)), in Log2Fixed fixed point.
	h0 := uint64(3) << frac
	ut := uniform.Moments().Sum
	ct := conc.Moments().Sum
	if ue.Below(ut, h0) {
		t.Errorf("uniform distribution flagged below 3 bits (H ≈ %.3f)", entropyBits(ue, ut))
	}
	if !ce.Below(ct, h0) {
		t.Errorf("concentrated distribution not flagged below 3 bits (H ≈ %.3f)", entropyBits(ce, ct))
	}
	var empty Entropy
	if empty.Below(0, h0) {
		t.Error("empty distribution must never be below")
	}
}

// TestEntropyErrorTable sweeps fractional widths and bounds the worst
// absolute entropy error vs the float64 baseline over a family of zipf-ish
// mixes; the committed numbers live in DESIGN.md. The error is dominated by
// the log2 linearisation (~0.0861 bits weighted twice, once inside S and
// once in L(T)), not by the fraction, once frac ≥ 8.
func TestEntropyErrorTable(t *testing.T) {
	fracs := []uint{4, 8, 12, 16, 24, 32}
	bounds := map[uint]float64{4: 0.30, 8: 0.20, 12: 0.18, 16: 0.18, 24: 0.18, 32: 0.18}
	r := rand.New(rand.NewSource(4))
	streams := make([][]uint64, 12)
	for i := range streams {
		n := 500 + r.Intn(3000)
		vals := make([]uint64, n)
		for j := range vals {
			// Mix a heavy value with a broad tail, sweeping concentration.
			if r.Intn(12) < i {
				vals[j] = 5
			} else {
				vals[j] = uint64(r.Intn(128))
			}
		}
		streams[i] = vals
	}
	for _, frac := range fracs {
		var worst float64
		for _, vals := range streams {
			d := NewFreqDist(128)
			e := d.TrackEntropy(frac)
			for _, v := range vals {
				d.Observe(v)
			}
			total := d.Moments().Sum
			err := math.Abs(entropyBits(e, total) - baseline.Entropy(d.Frequencies()))
			if err > worst {
				worst = err
			}
		}
		if worst > bounds[frac] {
			t.Errorf("frac %d: worst abs error %.4f bits exceeds bound %.2f", frac, worst, bounds[frac])
		}
		t.Logf("frac %2d: worst abs error %.4f bits", frac, worst)
	}
}

// TestTrackEntropyFoldsExisting pins that attaching the tracker after
// observations folds the standing counters in.
func TestTrackEntropyFoldsExisting(t *testing.T) {
	d := NewFreqDist(16)
	for i := 0; i < 100; i++ {
		d.Observe(uint64(i % 4))
	}
	e := d.TrackEntropy(16)
	var ref Entropy
	ref.frac = 16
	ref.Rederive(d.Frequencies())
	if e.Sum() != ref.Sum() {
		t.Fatalf("late attach S = %d, want %d", e.Sum(), ref.Sum())
	}
	d.Reset()
	if e.Sum() != 0 {
		t.Fatal("Reset did not clear the entropy accumulator")
	}
}
