package core

import (
	"errors"
	"fmt"
)

// ErrOutOfRange is returned when an observed value does not fit the
// distribution's counter array. Stat4 allocates one counter per possible
// value (Section 2: the tracked distributions inherently have a limited
// number of possible values), so the domain must be sized up front — exactly
// like the STAT_COUNTER_SIZE macro of the P4 library.
var ErrOutOfRange = errors.New("core: value outside distribution domain")

// FreqDist is a frequency-mode distribution: the tracked values are the
// frequencies f_v of each possible value v in [0, size). N counts distinct
// observed values, Xsum the total number of observations, and Xsumsq the sum
// of squared frequencies, maintained with the incremental 2f+1 identity.
//
// Percentile markers registered on the distribution advance by at most one
// value slot per packet (Figure 3), so a marker can lag on sparse
// distributions; Table 3 of the paper (and experiments.Table3 here)
// quantifies that error.
type FreqDist struct {
	freq []uint64
	m    Moments
	pct  []*Percentile
	ent  *Entropy
}

// NewFreqDist returns a frequency distribution over the value domain
// [0, size).
func NewFreqDist(size int) *FreqDist {
	if size <= 0 {
		panic(fmt.Sprintf("core: non-positive FreqDist size %d", size))
	}
	return &FreqDist{freq: make([]uint64, size)}
}

// Size returns the number of possible values (the counter array length).
func (d *FreqDist) Size() int { return len(d.freq) }

// Freq returns the current frequency of value v.
func (d *FreqDist) Freq(v uint64) uint64 {
	if v >= uint64(len(d.freq)) {
		return 0
	}
	return d.freq[v]
}

// Frequencies returns a copy of the counter array. Earlier versions returned
// the live backing slice, which let callers silently corrupt state behind the
// moments and percentile markers; every call site is a cold read path
// (baselines, controller planning), so the copy costs nothing that matters.
func (d *FreqDist) Frequencies() []uint64 {
	out := make([]uint64, len(d.freq))
	copy(out, d.freq)
	return out
}

// Moments returns the distribution's scaled moments.
func (d *FreqDist) Moments() *Moments { return &d.m }

// Observe records one occurrence of value v: the counter for v is
// incremented, the moments updated incrementally, and every registered
// percentile marker advanced by at most one slot.
//
//stat4:datapath
func (d *FreqDist) Observe(v uint64) error {
	if v >= uint64(len(d.freq)) {
		// The sentinel is returned bare: wrapping with fmt.Errorf would
		// allocate on a path reachable per packet (allocfree).
		return ErrOutOfRange
	}
	f := d.freq[v]
	d.m.AddFrequency(f, f == 0)
	d.freq[v] = f + 1
	if d.ent != nil {
		d.ent.observe(f + 1)
	}
	//stat4:exempt:boundedloop markers are registered at configuration time; the emitted program unrolls one stage per marker
	for _, p := range d.pct {
		p.observe(d, v)
	}
	return nil
}

// Step advances every registered percentile marker by at most one slot
// without recording a value. The paper notes that packets not carrying
// values of interest still contribute to moving the median; switch
// applications call Step for such packets.
//
//stat4:datapath
func (d *FreqDist) Step() {
	//stat4:exempt:boundedloop markers are registered at configuration time; the emitted program unrolls one stage per marker
	for _, p := range d.pct {
		p.step(d)
	}
}

// Reset zeroes all counters, moments and registered percentile markers.
func (d *FreqDist) Reset() {
	for i := range d.freq {
		d.freq[i] = 0
	}
	d.m.Reset()
	for _, p := range d.pct {
		p.reset()
	}
	if d.ent != nil {
		d.ent.Reset()
	}
}

// TrackMedian registers and returns a median marker (the 50th percentile).
func (d *FreqDist) TrackMedian() *Percentile { return d.TrackPercentile(1, 1) }

// TrackPercentile registers a marker for the a/(a+b) quantile expressed as
// the integer ratio a:b of mass below to mass above — the paper's
// generalisation of the median comparison. The median is 1:1; the 90th
// percentile is 9:1 ("the frequency of values lower than p is nine times
// bigger than the frequency of values higher than p"). Both weights must be
// positive.
func (d *FreqDist) TrackPercentile(a, b uint64) *Percentile {
	if a == 0 || b == 0 {
		panic("core: percentile weights must be positive")
	}
	p := &Percentile{lowW: a, highW: b}
	d.pct = append(d.pct, p)
	return p
}

// Percentile tracks one quantile of a frequency distribution online. It
// stores the marker position plus the combined frequency of values strictly
// below and strictly above it, and rebalances by at most one slot per packet.
type Percentile struct {
	lowW, highW uint64 // target ratio low:high, e.g. 1:1 for the median

	idx       uint64 // current marker value
	low, high uint64 // combined frequency below / above idx
	inited    bool
	moves     uint64 // total marker movements (the percentile's change rate)
}

// Value returns the marker's current position. Before any observation it
// returns 0.
func (p *Percentile) Value() uint64 { return p.idx }

// Initialized reports whether the marker has seen at least one value.
func (p *Percentile) Initialized() bool { return p.inited }

// LowCount returns the combined frequency of values below the marker.
func (p *Percentile) LowCount() uint64 { return p.low }

// HighCount returns the combined frequency of values above the marker.
func (p *Percentile) HighCount() uint64 { return p.high }

// Moves returns how many single-slot movements the marker has made. The
// paper points at percentile change rates as an anomaly signal ("we can
// track values and change rates of percentiles"); a reader samples this
// counter per interval and differences it.
func (p *Percentile) Moves() uint64 { return p.moves }

func (p *Percentile) reset() {
	p.idx, p.low, p.high, p.inited, p.moves = 0, 0, 0, false, 0
}

// observe accounts a new occurrence of v (already counted in d.freq) and then
// rebalances by one slot at most.
//
//stat4:datapath
func (p *Percentile) observe(d *FreqDist, v uint64) {
	if !p.inited {
		// The marker starts at the first observed value, not at the edge
		// of the domain; this is what keeps the early-stream error of
		// Table 3 bounded.
		p.idx = v
		p.inited = true
		return
	}
	switch {
	case v < p.idx:
		p.low++
	case v > p.idx:
		p.high++
	}
	p.step(d)
}

// step applies the paper's rebalancing rule once: with weights a:b, move the
// marker up when a·high > b·(low + f[idx]), down when b·low > a·(high +
// f[idx]). Moving one slot transfers the marker's own frequency to the side
// it leaves behind.
//
//stat4:datapath
func (p *Percentile) step(d *FreqDist) {
	if !p.inited {
		return
	}
	f := d.freq[p.idx]
	switch {
	case p.lowW*p.high > p.highW*(p.low+f) && p.idx+1 < uint64(len(d.freq)):
		p.low += f
		p.idx++
		p.high -= d.freq[p.idx]
		p.moves++
	case p.highW*p.low > p.lowW*(p.high+f) && p.idx > 0:
		p.high += f
		p.idx--
		p.low -= d.freq[p.idx]
		p.moves++
	}
}

// Settle repeatedly applies the rebalancing rule until the marker stops
// moving or maxSteps is reached, returning the number of steps taken. It is
// the "multi-step" ablation partner of the one-step-per-packet rule: a
// switch could only do this by recirculating the packet, which the paper
// rules out ("we want to avoid packet recirculation"). The benchmarks
// quantify what that restriction costs in accuracy and what recirculation
// would cost in work.
//
//stat4:reference multi-step settling needs packet recirculation, which the paper rules out
func (p *Percentile) Settle(d *FreqDist, maxSteps int) int {
	steps := 0
	for steps < maxSteps {
		before := p.idx
		p.step(d)
		if p.idx == before {
			break
		}
		steps++
	}
	return steps
}
