package core

import (
	"errors"
	"testing"

	"stat4/internal/packet"
	"stat4/internal/traffic"
)

// TestSparseCapacityContract pins the capacity contract the doc comment
// promises: under a high-cardinality churning flow mix — far more distinct
// keys than buckets — the table absorbs the stream with bounded memory,
// every overflow lands in Rejected, and no path allocates.
func TestSparseCapacityContract(t *testing.T) {
	const buckets = 4096
	d := NewSparseFreqDist(buckets, 4)

	mix := &traffic.FlowMix{
		Dests: []packet.IP4{packet.ParseIP4(10, 0, 0, 1)},
		Base:  packet.ParseIP4(198, 18, 0, 0),
		Flows: 1 << 20, Stable: 256, ChurnNs: 10e3, S: 1.05,
		Rate: 1e9, End: 200e3, Seed: 42,
	}

	var offered, accepted uint64
	for {
		p, ok := mix.Next()
		if !ok {
			break
		}
		offered++
		err := d.Observe(uint64(p.Frame.IPv4.Src))
		switch {
		case err == nil:
			accepted++
		case errors.Is(err, ErrSparseFull):
		default:
			t.Fatalf("unexpected error: %v", err)
		}
	}
	if offered < 100000 {
		t.Fatalf("mix produced only %d packets; the stream is not exercising overflow", offered)
	}
	if d.Rejected == 0 {
		t.Fatal("no rejections: the key stream did not overflow the table, contract untested")
	}
	if accepted+d.Rejected != offered {
		t.Fatalf("observation ledger leaks: accepted %d + rejected %d != offered %d",
			accepted, d.Rejected, offered)
	}
	if d.Active() > buckets {
		t.Fatalf("Active %d exceeds Buckets %d", d.Active(), buckets)
	}
	if got := d.MemoryCells(); got != 2*buckets {
		t.Fatalf("MemoryCells %d moved from its configured 2*%d", got, buckets)
	}

	// Steady state (table full of live keys) must not allocate: the
	// rejection path runs once per packet exactly when load is worst.
	var key uint64
	allocs := testing.AllocsPerRun(1000, func() {
		d.Observe(key) //nolint:errcheck // rejections are the point here
		key++
	})
	if allocs != 0 {
		t.Fatalf("Observe allocates %.1f times per call at steady state", allocs)
	}
}
