package stat4

import (
	"testing"

	"stat4/internal/flowtable"
)

// --- sparse flow-table state plane -------------------------------------------
//
// The flow-table benchmarks pin the tentpole claim: per-packet cost is bounded
// and independent of how many flows the table is tracking. Isolating that
// takes care, because two confounds scale with a naive "insert N, touch N"
// setup: the timed key list's own DRAM residency, and the left/right
// placement mix (a nearly empty table parks everything in its left bucket,
// so low tiers would win an extra cache hit that has nothing to do with
// per-flow cost). So every tier runs against the same 2^23-bucket table
// filled once to its 4M-flow capacity placement; tiers differ only in how
// many of those flows are still live (re-stamped into a fresh epoch, the
// rest left to age out), and the timed loop cycles a fixed 64k-key sample of
// the live set. Touch and Lookup probe exactly two buckets regardless, so
// ns/op should be flat from 100k to 4M live flows, with 0 allocs/op.

// ftBenchBuckets sizes every steady-state benchmark table: room for 4M live
// flows at ~0.5 load factor.
const ftBenchBuckets = 1 << 23

// ftBenchKey spreads sequential flow ids over the key space (Weyl increment);
// the table hashes keys anyway, this just avoids benchmarking a degenerate
// arithmetic sequence.
func ftBenchKey(i int) uint64 { return uint64(i)*0x9e3779b97f4a7c15 + 1 }

// ftBenchLiveTs is the timestamp of the live epoch: three epochs past the
// fill stamps (epoch 0, TTL 1), so fill-time entries are expired and only
// re-stamped flows count as live.
const ftBenchLiveTs = uint64(3) << 20

// ftBenchFill builds the shared capacity placement — 4M flows offered to a
// 2^23-bucket table — then re-stamps a uniform `flows`-sized subset into the
// live epoch and returns a fixed 64k sample of that live set. Placement is
// identical across tiers (a Touch on a flow's own expired entry reclaims the
// same bucket), so varying `flows` varies liveness and nothing else.
func ftBenchFill(b *testing.B, flows int) (*flowtable.Table, []uint64) {
	b.Helper()
	t := flowtable.New(flowtable.Config{Buckets: ftBenchBuckets, EpochShift: 20, TTL: 1})
	admitted := make([]uint64, 0, 4_000_000)
	for i := 0; i < 4_000_000; i++ {
		k := ftBenchKey(i)
		if _, out := t.Touch(k, 1); out == flowtable.Admitted {
			admitted = append(admitted, k)
		}
	}
	if len(admitted) < 2_000_000 {
		b.Fatalf("prefill admitted only %d of 4M flows", len(admitted))
	}
	live := ftBenchThin(admitted, flows)
	for _, k := range live {
		t.Touch(k, ftBenchLiveTs)
	}
	if got := t.Live(ftBenchLiveTs); got != len(live) {
		b.Fatalf("re-stamped %d flows but %d are live", len(live), got)
	}
	return t, ftBenchThin(live, 1<<16)
}

// ftBenchThin takes a uniform stride sample of n keys, so every tier's key
// set has the same placement distribution as the full admitted population.
func ftBenchThin(keys []uint64, n int) []uint64 {
	if len(keys) <= n {
		return keys
	}
	out := make([]uint64, 0, n)
	stride := len(keys) / n
	for i := 0; i < len(keys) && len(out) < n; i += stride {
		out = append(out, keys[i])
	}
	return out
}

var ftBenchSizes = []struct {
	name  string
	flows int
}{
	{"live=100k", 100_000},
	{"live=1M", 1_000_000},
	{"live=4M", 4_000_000},
}

// BenchmarkFlowTableTouch is the steady-state hit path: every packet belongs
// to a live flow, so Touch stamps and counts in place. This is the per-packet
// cost a switch pays once the flow set has been admitted.
func BenchmarkFlowTableTouch(b *testing.B) {
	for _, sz := range ftBenchSizes {
		b.Run(sz.name, func(b *testing.B) {
			t, keys := ftBenchFill(b, sz.flows)
			idx := 0
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, out := t.Touch(keys[idx], ftBenchLiveTs)
				benchSink += uint64(out)
				if idx++; idx == len(keys) {
					idx = 0
				}
			}
		})
	}
}

// BenchmarkFlowTableLookup reads live flows without mutating them — the
// control plane's point-query cost.
func BenchmarkFlowTableLookup(b *testing.B) {
	for _, sz := range ftBenchSizes {
		b.Run(sz.name, func(b *testing.B) {
			t, keys := ftBenchFill(b, sz.flows)
			idx := 0
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c, _ := t.Lookup(keys[idx], ftBenchLiveTs)
				benchSink += c
				if idx++; idx == len(keys) {
					idx = 0
				}
			}
		})
	}
}

// BenchmarkFlowTableEvict is the reclaim path: a near-full table whose
// entries have all aged out, fed a stream of new flows with the clock
// advancing one epoch per packet, so almost every Touch claims a bucket by
// evicting an expired entry — lazy expiry's worst case, and still two probes.
func BenchmarkFlowTableEvict(b *testing.B) {
	const buckets = 1 << 21
	t := flowtable.New(flowtable.Config{Buckets: buckets, EpochShift: 16, TTL: 1})
	offered := 2 * buckets // drive occupancy to ~95% (tanh of the offered load)
	for i := 0; i < offered; i++ {
		t.Touch(ftBenchKey(i), 1)
	}
	next := offered
	ts := uint64(2) << 16 // two epochs past the prefill stamps: all expired
	pre := t.Stats()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, out := t.Touch(ftBenchKey(next), ts)
		benchSink += uint64(out)
		next++
		ts += 1 << 16
	}
	b.StopTimer()
	st := t.Stats()
	b.ReportMetric(float64(st.Evicted-pre.Evicted)/float64(st.Offered-pre.Offered), "evict-frac")
}

// BenchmarkFlowTableSharded adds the shard dispatch hash on top of the hit
// path: one logical million-flow table partitioned over 1/4/8 shards, total
// bucket budget held constant.
func BenchmarkFlowTableSharded(b *testing.B) {
	for _, shards := range []int{1, 4, 8} {
		b.Run(benchShardName(shards), func(b *testing.B) {
			cfg := flowtable.Config{Buckets: ftBenchBuckets / shards, EpochShift: 40, TTL: 4}
			s := flowtable.NewSharded(cfg, shards)
			keys := make([]uint64, 0, 1_000_000)
			for i := 0; i < 1_000_000; i++ {
				k := ftBenchKey(i)
				if _, _, out := s.Touch(k, 1); out == flowtable.Admitted {
					keys = append(keys, k)
				}
			}
			keys = ftBenchThin(keys, 1<<16)
			idx := 0
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, _, out := s.Touch(keys[idx], 2)
				benchSink += uint64(out)
				if idx++; idx == len(keys) {
					idx = 0
				}
			}
		})
	}
}

func benchShardName(n int) string {
	switch n {
	case 1:
		return "shards=1"
	case 4:
		return "shards=4"
	}
	return "shards=8"
}

// BenchmarkFlowTableDenseBaseline is the comparison floor: a dense counter
// array indexed by masked key — one unconditional increment, no keys, no
// expiry, and no way to scale past its address space. The gap to
// FlowTableTouch is the price of exact keys plus lazy expiry.
func BenchmarkFlowTableDenseBaseline(b *testing.B) {
	counts := make([]uint64, ftBenchBuckets)
	keys := make([]uint64, 1<<16)
	for i := range keys {
		keys[i] = ftBenchKey(i)
	}
	idx := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		counts[keys[idx]&(ftBenchBuckets-1)]++
		if idx++; idx == len(keys) {
			idx = 0
		}
	}
	benchSink += counts[0]
}
