// SYN-flood detection (Table 1, row 3): the switch tracks the rate of
// connection-attempt SYNs per time interval in a circular window, checks
// each completed interval against mean + 2 sigma, and pushes an alert digest
// the moment a flood begins — entirely in the data plane.
package main

import (
	"fmt"
	"log"

	"stat4/internal/netem"
	"stat4/internal/p4"
	"stat4/internal/packet"
	"stat4/internal/stat4p4"
	"stat4/internal/traffic"
)

func main() {
	const (
		intShift = 23 // ~8.4 ms intervals
		window   = 50
	)
	lib := stat4p4.Build(stat4p4.Options{Slots: 1, Size: 64, Stages: 1})
	rt, err := stat4p4.NewRuntime(lib)
	if err != nil {
		log.Fatal(err)
	}
	// Bind the window to SYN packets only: the binding table matches the
	// parser's tcp.syn bit, so data packets don't touch the distribution.
	// k = 3 sigma: SYN arrivals from short web flows are bursty, so the
	// 2-sigma threshold of the smooth case study would false-alarm here.
	server := packet.NewPrefix(packet.ParseIP4(10, 0, 1, 0), 24)
	if _, err := rt.BindWindow(0, 0, stat4p4.SynTo(server), intShift, window, 3); err != nil {
		log.Fatal(err)
	}

	sim := netem.NewSim()
	node := netem.NewSwitchNode(sim, rt.Switch(), 1e6 /* 1 ms to controller */)

	// Ignore alerts until the window has filled: with only a few stored
	// intervals the variance estimate is noisy (the case-study controller
	// does the same).
	const warmup = (window + 5) << intShift
	var alerts []uint64
	node.OnDigest = func(now uint64, d p4.Digest) {
		if d.ID == stat4p4.DigestAnomaly && d.Values[4] >= warmup {
			alerts = append(alerts, d.Values[4]) // switch timestamp
		}
	}

	// Background web traffic (SYN:data about 1:8) plus a flood that starts
	// at t = 1 s.
	const floodStart = 1e9
	dests := []packet.IP4{packet.ParseIP4(10, 0, 1, 6)}
	web := &traffic.WebMix{Dests: dests, Rate: 80000, End: 2e9, Seed: 1}
	flood := &traffic.SynFlood{Dest: dests[0], Rate: 400000, Start: floodStart, End: 2e9, Seed: 2}
	node.InjectStream(traffic.Merge(web, flood), 1)
	sim.Run()

	m, _ := rt.ReadMoments(0)
	fmt.Printf("SYN-rate window after the run: N=%d mean(NX)=%d sd=%d\n", m.N, m.Xsum, m.SD)
	if len(alerts) == 0 {
		fmt.Println("no flood detected — something is wrong")
		return
	}
	first := alerts[0]
	fmt.Printf("flood started at %.3fs; first in-switch alert at %.3fs (%.1fms after onset)\n",
		floodStart/1e9, float64(first)/1e9, (float64(first)-floodStart)/1e6)
	fmt.Printf("%d alert digests pushed to the controller in total\n", len(alerts))
}
