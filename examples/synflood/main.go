// SYN-flood detection (Table 1, row 3): the switch tracks the rate of
// connection-attempt SYNs per time interval in a circular window, checks
// each completed interval against mean + 2 sigma, and pushes an alert digest
// the moment a flood begins — entirely in the data plane.
package main

import (
	"fmt"
	"io"
	"os"

	"stat4/internal/netem"
	"stat4/internal/p4"
	"stat4/internal/packet"
	"stat4/internal/stat4p4"
	"stat4/internal/traffic"
)

// floodConfig sizes the scenario: main runs the full two-second trace, the
// smoke test a scaled-down one with the same rate ratio.
type floodConfig struct {
	IntShift   uint // log2 of the interval width in ns
	Window     int  // stored intervals
	WebRate    float64
	FloodRate  float64
	FloodStart uint64
	EndNs      uint64
}

func defaultFloodConfig() floodConfig {
	return floodConfig{
		IntShift:   23, // ~8.4 ms intervals
		Window:     50,
		WebRate:    80000,
		FloodRate:  400000,
		FloodStart: 1e9,
		EndNs:      2e9,
	}
}

func run(w io.Writer, cfg floodConfig) error {
	lib := stat4p4.Build(stat4p4.Options{Slots: 1, Size: 64, Stages: 1})
	rt, err := stat4p4.NewRuntime(lib)
	if err != nil {
		return err
	}
	// Bind the window to SYN packets only: the binding table matches the
	// parser's tcp.syn bit, so data packets don't touch the distribution.
	// k = 3 sigma: SYN arrivals from short web flows are bursty, so the
	// 2-sigma threshold of the smooth case study would false-alarm here.
	server := packet.NewPrefix(packet.ParseIP4(10, 0, 1, 0), 24)
	if _, err := rt.BindWindow(0, 0, stat4p4.SynTo(server), cfg.IntShift, cfg.Window, 3); err != nil {
		return err
	}

	sim := netem.NewSim()
	node := netem.NewSwitchNode(sim, rt.Switch(), 1e6 /* 1 ms to controller */)

	// Ignore alerts until the window has filled: with only a few stored
	// intervals the variance estimate is noisy (the case-study controller
	// does the same).
	warmup := uint64(cfg.Window+5) << uint64(cfg.IntShift)
	var alerts []uint64
	node.OnDigest = func(now uint64, d p4.Digest) {
		if d.ID == stat4p4.DigestAnomaly && d.Values[4] >= warmup {
			alerts = append(alerts, d.Values[4]) // switch timestamp
		}
	}

	// Background web traffic (SYN:data about 1:8) plus a flood partway in.
	dests := []packet.IP4{packet.ParseIP4(10, 0, 1, 6)}
	web := &traffic.WebMix{Dests: dests, Rate: cfg.WebRate, End: cfg.EndNs, Seed: 1}
	flood := &traffic.SynFlood{Dest: dests[0], Rate: cfg.FloodRate, Start: cfg.FloodStart, End: cfg.EndNs, Seed: 2}
	node.InjectStream(traffic.Merge(web, flood), 1)
	sim.Run()

	m, _ := rt.ReadMoments(0)
	fmt.Fprintf(w, "SYN-rate window after the run: N=%d mean(NX)=%d sd=%d\n", m.N, m.Xsum, m.SD)
	if len(alerts) == 0 {
		fmt.Fprintln(w, "no flood detected — something is wrong")
		return nil
	}
	first := alerts[0]
	fmt.Fprintf(w, "flood started at %.3fs; first in-switch alert at %.3fs (%.1fms after onset)\n",
		float64(cfg.FloodStart)/1e9, float64(first)/1e9, (float64(first)-float64(cfg.FloodStart))/1e6)
	fmt.Fprintf(w, "%d alert digests pushed to the controller in total\n", len(alerts))
	return nil
}

func main() {
	if err := run(os.Stdout, defaultFloodConfig()); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
