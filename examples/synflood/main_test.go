package main

import (
	"strings"
	"testing"
)

// smokeFloodConfig shrinks the scenario ~13x while keeping the web:flood
// rate ratio, so the in-switch detection still has a clean signal: ~1 ms
// intervals, a 30-interval window, and a flood starting at 100 ms.
func smokeFloodConfig() floodConfig {
	return floodConfig{
		IntShift:   20,
		Window:     30,
		WebRate:    80000,
		FloodRate:  400000,
		FloodStart: 100e6,
		EndNs:      150e6,
	}
}

// TestSynfloodSmoke replays the scaled-down trace and requires the switch to
// have pushed at least one post-warmup anomaly digest.
func TestSynfloodSmoke(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, smokeFloodConfig()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if strings.Contains(out, "something is wrong") {
		t.Fatalf("scaled-down flood went undetected:\n%s", out)
	}
	if !strings.Contains(out, "first in-switch alert") {
		t.Fatalf("output missing the alert line:\n%s", out)
	}
}

// TestSynfloodFull runs the example at its default two-second scale.
func TestSynfloodFull(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale example run skipped in -short mode")
	}
	var sb strings.Builder
	if err := run(&sb, defaultFloodConfig()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "first in-switch alert") {
		t.Fatalf("full run detected nothing:\n%s", sb.String())
	}
}
