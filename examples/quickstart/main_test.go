package main

import (
	"strings"
	"testing"
)

// TestQuickstartSmoke runs the example on a reduced sample count and checks
// the printed report reaches the outlier verdicts — the whole pipeline from
// Observe to IsOutlierAbove works end to end.
func TestQuickstartSmoke(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, 2000); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"N (distinct values)",
		"median marker",
		"counter at value 50",
		"outlier = false",
		"outlier = true",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

// TestQuickstartFull runs the example at its default scale.
func TestQuickstartFull(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale example run skipped in -short mode")
	}
	var sb strings.Builder
	if err := run(&sb, 20000); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "outlier = true") {
		t.Fatalf("full run never flagged the hot counter:\n%s", sb.String())
	}
}
