// Quickstart: the Stat4 reference library in ~60 lines. Track a frequency
// distribution of values of interest, read its integer-only statistical
// measures (scaled mean, variance, approximate standard deviation, online
// median), and run the paper's outlier check — no division, no floats.
package main

import (
	"fmt"
	"io"
	"math/rand"
	"os"

	"stat4/internal/core"
)

// run feeds `samples` normal-ish observations into a tracked distribution and
// prints the integer measures plus the outlier check. main uses the full
// workload; the smoke test a tiny one.
func run(w io.Writer, samples int) error {
	// A distribution over values 0..99 — say, packets per destination.
	dist := core.NewFreqDist(100)
	median := dist.TrackMedian()
	p90 := dist.TrackPercentile(9, 1) // low:high mass ratio 9:1

	// Feed it a normal-ish workload centred at 50.
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < samples; i++ {
		v := rng.NormFloat64()*8 + 50
		if v < 0 {
			v = 0
		}
		if v > 99 {
			v = 99
		}
		if err := dist.Observe(uint64(v)); err != nil {
			return err
		}
	}

	m := dist.Moments()
	fmt.Fprintln(w, "Stat4 tracks the scaled distribution NX, so no division is needed:")
	fmt.Fprintf(w, "  N (distinct values)  = %d\n", m.N)
	fmt.Fprintf(w, "  Xsum  (= mean of NX) = %d\n", m.Mean())
	fmt.Fprintf(w, "  Xsumsq               = %d\n", m.Sumsq)
	fmt.Fprintf(w, "  var(NX) = N*Xsumsq - Xsum^2 = %d\n", m.Variance())
	fmt.Fprintf(w, "  sd(NX)  (approx sqrt)       = %d\n", m.StdDev())
	fmt.Fprintf(w, "  median marker = %d, 90th percentile marker = %d\n", median.Value(), p90.Value())

	// The outlier test compares in NX space: is a counter k sigma above
	// the mean frequency?
	typical := dist.Freq(50)
	fmt.Fprintf(w, "\noutlier check at 2 sigma:\n")
	fmt.Fprintf(w, "  counter at value 50 (freq %4d): outlier = %v\n",
		typical, m.IsOutlierAbove(typical, 2))
	fmt.Fprintf(w, "  hypothetical hot counter (%4d): outlier = %v\n",
		typical*5, m.IsOutlierAbove(typical*5, 2))
	return nil
}

func main() {
	if err := run(os.Stdout, 20000); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
