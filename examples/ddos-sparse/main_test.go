package main

import (
	"strings"
	"testing"
)

// TestDDoSSparseSmoke replays a reduced trace (60 balanced rounds, then a
// 1000-packet attack) and requires the sparse tracker to both alert and name
// the right victim address in the digest.
func TestDDoSSparseSmoke(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, 60, 1000); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if strings.Contains(out, "something is wrong") {
		t.Fatalf("scaled-down attack went undetected:\n%s", out)
	}
	if !strings.Contains(out, "identification correct: true") {
		t.Fatalf("victim misidentified:\n%s", out)
	}
}

// TestDDoSSparseFull runs the example at its default scale.
func TestDDoSSparseFull(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale example run skipped in -short mode")
	}
	var sb strings.Builder
	if err := run(&sb, 200, 3000); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "identification correct: true") {
		t.Fatalf("full run failed:\n%s", sb.String())
	}
}
