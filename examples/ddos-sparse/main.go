// Volumetric DDoS with sparse tracking (Table 1, row 2 + the Section 5
// memory extension): the switch tracks per-destination packet counts across
// the ENTIRE IPv4 space using a 256-bucket hash table — memory proportional
// to destinations actually seen, not to the 2^32-value domain — and names
// the attacked address in the alert digest.
package main

import (
	"fmt"
	"io"
	"math/rand"
	"os"

	"stat4/internal/p4"
	"stat4/internal/packet"
	"stat4/internal/stat4p4"
)

// run replays `rounds` balanced rounds over 60 scattered destinations and
// then `attackPkts` packets at one victim; main uses the full trace, the
// smoke test a short one.
func run(w io.Writer, rounds, attackPkts int) error {
	lib := stat4p4.Build(stat4p4.Options{Slots: 1, Size: 256, Stages: 1, Sparse: true, DigestBuf: 4096})
	rt, err := stat4p4.NewRuntime(lib)
	if err != nil {
		return err
	}
	// Full /32 keys (shift 0), imbalance check at 2 sigma.
	if _, err := rt.BindSparseDst(0, 0, stat4p4.AllIPv4(), 0, 2); err != nil {
		return err
	}
	sw := rt.Switch()

	// 60 scattered destinations across the whole address space.
	rng := rand.New(rand.NewSource(11))
	dests := make([]packet.IP4, 60)
	for i := range dests {
		dests[i] = packet.IP4(rng.Uint32())
	}
	victim := dests[17]

	send := func(d packet.IP4, ts uint64) {
		sw.ProcessFrame(ts, 1, packet.NewUDPFrame(packet.IP4(rng.Uint32()), d, 5, 80, 64).Serialize())
	}

	// Normal operation: balanced traffic.
	var ts uint64
	for round := 0; round < rounds; round++ {
		for _, d := range dests {
			send(d, ts)
			ts++
		}
	}
	// Drain warm-up noise, then the attack begins.
	for len(sw.Digests()) > 0 {
		<-sw.Digests()
	}
	attackStart := ts
	for i := 0; i < attackPkts; i++ {
		send(victim, ts)
		ts++
	}

	m, _ := rt.ReadMoments(0)
	rej, _ := rt.SparseRejected(0)
	fmt.Fprintf(w, "tracked %d destinations of a 2^32 domain in %d buckets (%d rejected observations)\n",
		m.N, lib.Opts.Size, rej)

	var first *p4.Digest
	alerts := 0
	for len(sw.Digests()) > 0 {
		d := <-sw.Digests()
		if d.ID == stat4p4.DigestAnomaly {
			if first == nil {
				dd := d
				first = &dd
			}
			alerts++
		}
	}
	if first == nil {
		fmt.Fprintln(w, "attack not detected — something is wrong")
		return nil
	}
	named := packet.IP4(first.Values[1])
	fmt.Fprintf(w, "attack began at packet %d; first alert at packet %d naming %v (victim %v)\n",
		attackStart, first.Values[4], named, victim)
	fmt.Fprintf(w, "%d alerts pushed in total; identification correct: %v\n", alerts, named == victim)
	return nil
}

func main() {
	if err := run(os.Stdout, 200, 3000); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
