// Heavy-hitter identification by probabilistic recirculation: each packet
// flips a 2^-k coin in the data plane; winners take one extra pipeline pass
// that promotes their flow key into a small exact-count candidate table. A
// flow sending n packets is promoted with probability 1 − (1 − 2^-k)^n, so
// the elephants of a zipfian mix surface almost surely while mice rarely
// spend the recirculation budget — the switch names the top talkers without
// per-flow state.
package main

import (
	"fmt"
	"io"
	"os"

	"stat4/internal/detect"
	"stat4/internal/netem"
	"stat4/internal/p4"
	"stat4/internal/packet"
	"stat4/internal/stat4p4"
	"stat4/internal/traffic"
)

// hhConfig sizes the scenario; the smoke test scales the duration down.
type hhConfig struct {
	Rate        float64 // aggregate packets per second
	EndNs       uint64
	SampleShift uint    // recirculation probability 2^-SampleShift
	ZipfS       float64 // source popularity skew
	Sources     uint64  // source population
}

func defaultHHConfig() hhConfig {
	return hhConfig{
		Rate:        200000,
		EndNs:       2e9,
		SampleShift: 6,
		ZipfS:       1.3,
		Sources:     4096,
	}
}

// stream builds the scenario's deterministic packet stream; run calls it
// twice — once to inject, once to tally the ground truth.
func (cfg hhConfig) stream() traffic.Stream {
	return &traffic.Sourced{
		Dest:   packet.ParseIP4(10, 0, 0, 1),
		Base:   packet.ParseIP4(198, 18, 0, 0),
		Values: traffic.ZipfValues(cfg.ZipfS, cfg.Sources, 77),
		Rate:   cfg.Rate,
		End:    cfg.EndNs,
		Seed:   3,
	}
}

// runStats is what a replay yields for quality scoring: the candidate table
// (heaviest first), the deterministic ground-truth tally and the true top
// talker.
type runStats struct {
	Candidates []stat4p4.HHEntry
	Tally      map[uint64]uint64
	Total      uint64
	TrueTop    uint64
}

func run(w io.Writer, cfg hhConfig) (runStats, error) {
	var stats runStats
	lib := stat4p4.Build(stat4p4.Options{Slots: 1, Size: 64, Stages: 1, HeavyHitter: true, DigestBuf: 4096})
	rt, err := stat4p4.NewRuntime(lib)
	if err != nil {
		return stats, err
	}
	// Full /32 source keys, one promotion pass per 2^SampleShift packets.
	if _, err := rt.BindHeavyHitterSrc(0, 0, stat4p4.AllIPv4(), 0, cfg.SampleShift); err != nil {
		return stats, err
	}

	sim := netem.NewSim()
	node := netem.NewSwitchNode(sim, rt.Switch(), 1e6 /* 1 ms to controller */)

	var promotions []p4.Digest
	node.OnDigest = func(now uint64, d p4.Digest) {
		if d.ID == stat4p4.DigestHeavyHitter {
			promotions = append(promotions, d)
		}
	}
	node.InjectStream(cfg.stream(), 1)
	sim.Run()

	// Ground truth: replay the same deterministic stream and count per source.
	truth, total := detect.TallySrcs(cfg.stream())
	var top uint64
	for k, n := range truth {
		if n > truth[top] || (n == truth[top] && k < top) {
			top = k
		}
	}

	entries, err := rt.ReadHeavyHitters(0)
	if err != nil {
		return stats, err
	}
	stats.Candidates, stats.Tally, stats.Total, stats.TrueTop = entries, truth, total, top
	sw := rt.Switch().Stats()
	fmt.Fprintf(w, "%d packets, %d flows; %d recirculated (budget 2^-%d), %d candidates promoted\n",
		total, len(truth), sw.Recirculated, cfg.SampleShift, len(entries))
	if len(entries) == 0 {
		fmt.Fprintln(w, "no heavy hitters surfaced — something is wrong")
		return stats, nil
	}
	est := entries[0].Count << cfg.SampleShift
	fmt.Fprintf(w, "top candidate %v with %d promotions (≈%d packets); true top talker %v sent %d\n",
		packet.IP4(entries[0].Key), entries[0].Count, est, packet.IP4(top), truth[top])
	fmt.Fprintf(w, "%d promotion digests pushed; identification correct: %v\n",
		len(promotions), entries[0].Key == top)
	return stats, nil
}

func main() {
	if _, err := run(os.Stdout, defaultHHConfig()); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
