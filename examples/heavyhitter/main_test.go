package main

import (
	"strings"
	"testing"
)

// TestHeavyHitterSmoke runs a shortened trace and requires the true top
// talker of the zipfian mix to surface as the heaviest candidate.
func TestHeavyHitterSmoke(t *testing.T) {
	cfg := defaultHHConfig()
	cfg.EndNs = 3e8
	cfg.SampleShift = 4
	var sb strings.Builder
	if err := run(&sb, cfg); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if strings.Contains(out, "something is wrong") {
		t.Fatalf("no heavy hitters surfaced:\n%s", out)
	}
	if !strings.Contains(out, "identification correct: true") {
		t.Fatalf("top talker misidentified:\n%s", out)
	}
}

// TestHeavyHitterFull runs the example at its default scale.
func TestHeavyHitterFull(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale example run skipped in -short mode")
	}
	var sb strings.Builder
	if err := run(&sb, defaultHHConfig()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "identification correct: true") {
		t.Fatalf("full run failed:\n%s", sb.String())
	}
}
