package main

import (
	"io"
	"strings"
	"testing"

	"stat4/internal/detect"
)

// heavySets grades a run with the internal/detect set scorer: the reported
// heavy keys (candidate counts scaled back by the sampling budget) against
// the keys truly holding ≥2% of traffic.
func heavySets(cfg hhConfig, stats runStats) (reported, truth map[uint64]bool) {
	truth = detect.HeavySet(stats.Tally, stats.Total, 0.02)
	reported = make(map[uint64]bool)
	floor := 0.02 * float64(stats.Total)
	for _, e := range stats.Candidates {
		if float64(e.Count)*float64(uint64(1)<<cfg.SampleShift) >= floor {
			reported[e.Key] = true
		}
	}
	return reported, truth
}

// TestHeavyHitterSmoke runs a shortened trace and requires the true top
// talker of the zipfian mix to surface as the heaviest candidate.
func TestHeavyHitterSmoke(t *testing.T) {
	cfg := defaultHHConfig()
	cfg.EndNs = 3e8
	cfg.SampleShift = 4
	var sb strings.Builder
	stats, err := run(&sb, cfg)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if strings.Contains(out, "something is wrong") {
		t.Fatalf("no heavy hitters surfaced:\n%s", out)
	}
	if !strings.Contains(out, "identification correct: true") {
		t.Fatalf("top talker misidentified:\n%s", out)
	}
	if len(stats.Candidates) == 0 || stats.Candidates[0].Key != stats.TrueTop {
		t.Fatalf("heaviest candidate is not the true top talker: %+v", stats.Candidates)
	}
}

// TestHeavyHitterIdentification pins the example's full-scale quality
// through the internal/detect set scorer: the run is deterministic, so the
// true top talker must head the candidate table and the reported ≥2%-share
// heavy set must match ground truth with F1 ≥ 0.85 and recall ≥ 0.8 (keys
// sitting exactly at the 2% boundary can fall either side of the sampled
// estimate floor). A refactor that perturbs the sampling hash or the
// candidate table silently shows up here as a score drop.
func TestHeavyHitterIdentification(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale example run skipped in -short mode")
	}
	cfg := defaultHHConfig()
	stats, err := run(io.Discard, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Candidates) == 0 {
		t.Fatal("no candidates promoted")
	}
	if got := stats.Candidates[0].Key; got != stats.TrueTop {
		t.Fatalf("heaviest candidate %d is not the true top talker %d", got, stats.TrueTop)
	}
	reported, truth := heavySets(cfg, stats)
	_, recall, f1 := detect.SetPRF(reported, truth)
	if recall < 0.8 {
		t.Fatalf("recall %.3f below pinned 0.8: true ≥2%%-share talkers missing from the reported set", recall)
	}
	if f1 < 0.85 {
		t.Fatalf("heavy-set F1 %.3f below pinned 0.85 (reported %d keys, truth %d)",
			f1, len(reported), len(truth))
	}
	// The top estimate must be within 20% of the true count (probabilistic
	// recirculation at 2^-6 over ~100k packets concentrates tightly).
	est := float64(stats.Candidates[0].Count) * float64(uint64(1)<<cfg.SampleShift)
	truthCount := float64(stats.Tally[stats.TrueTop])
	if est < 0.8*truthCount || est > 1.2*truthCount {
		t.Fatalf("top-talker estimate %.0f strayed beyond ±20%% of true count %.0f", est, truthCount)
	}
}
