// Load-balancing check (Table 1, row 4): the switch tracks packets per
// destination as a frequency distribution and runs the imbalance check
// N·f > Xsum + 2·sigma on every update. When one server starts absorbing a
// disproportionate share, the switch names it in an alert digest — the
// controller never polls.
package main

import (
	"fmt"
	"log"

	"stat4/internal/netem"
	"stat4/internal/p4"
	"stat4/internal/packet"
	"stat4/internal/stat4p4"
	"stat4/internal/traffic"
)

func main() {
	lib := stat4p4.Build(stat4p4.Options{Slots: 1, Size: 16, Stages: 1})
	rt, err := stat4p4.NewRuntime(lib)
	if err != nil {
		log.Fatal(err)
	}
	// Eight servers 10.0.9.0 … 10.0.9.7; the distribution indexes the low
	// octet. k = 2 arms the in-switch imbalance check.
	pool := packet.NewPrefix(packet.ParseIP4(10, 0, 9, 0), 29)
	base := uint64(packet.ParseIP4(10, 0, 9, 0))
	if _, err := rt.BindFreqDst(0, 0, stat4p4.DstIn(pool), 0, base, 8, 1, 1, 2); err != nil {
		log.Fatal(err)
	}

	servers := make([]packet.IP4, 8)
	for i := range servers {
		servers[i] = packet.ParseIP4(10, 0, 9, byte(i))
	}

	sim := netem.NewSim()
	node := netem.NewSwitchNode(sim, rt.Switch(), 1e6)
	// Ignore the first 100 ms while the distribution's moments settle.
	const warmup = 1e8
	var hot []uint64
	var firstAlert uint64
	node.OnDigest = func(now uint64, d p4.Digest) {
		if d.ID == stat4p4.DigestAnomaly && d.Values[4] >= warmup {
			if firstAlert == 0 {
				firstAlert = d.Values[4]
			}
			hot = append(hot, d.Values[1]) // which server index
		}
	}

	// Balanced traffic, then server 5 starts taking 4x its share at 0.5 s
	// (a broken consistent-hashing bucket, say).
	const skewStart = 5e8
	balanced := &traffic.LoadBalanced{Dests: servers, Rate: 100000, End: 1e9, Seed: 3, Jitter: 0.5}
	skew := &traffic.Spike{Dest: servers[5], Rate: 50000, Start: skewStart, End: 1e9, Seed: 4, Jitter: 0.5}
	node.InjectStream(traffic.Merge(balanced, skew), 1)
	sim.Run()

	counters, _ := rt.ReadCounters(0, 8)
	fmt.Println("packets per server:")
	for i, c := range counters {
		fmt.Printf("  %v : %6d\n", servers[i], c)
	}
	if len(hot) == 0 {
		fmt.Println("no imbalance detected — something is wrong")
		return
	}
	fmt.Printf("imbalance began at %.3fs; first in-switch alert at %.3fs naming server index %d (%v)\n",
		skewStart/1e9, float64(firstAlert)/1e9, hot[0], servers[hot[0]])
}
