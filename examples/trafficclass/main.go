// Traffic classification monitoring (Table 1, row 5): the switch tracks
// packets by type and the controller watches the distribution's in-switch
// statistical measures for drift — the paper's signal that an in-network ML
// classifier's model has gone stale.
//
// This example also demonstrates a statistical subtlety of the mean + k·σ
// outlier check: over a frequency distribution with N distinct values, the
// largest possible z-score is (N−1)/√N, so with only two classes (TCP vs
// UDP, max z ≈ 0.71) no threshold k ≥ 1 can ever fire. The case study's
// six subnets clear k = 2 only barely (max z ≈ 2.04). For few-class
// distributions the right drift signals are the ones read here: the median
// marker of a finer-grained companion distribution and the measures
// themselves — all maintained in the switch, fetched with a handful of
// register reads instead of a sketch pull.
package main

import (
	"fmt"
	"log"

	"stat4/internal/stat4p4"
	"stat4/internal/traffic"
)

func main() {
	lib := stat4p4.Build(stat4p4.Options{Slots: 2, Size: 64, Stages: 2})
	rt, err := stat4p4.NewRuntime(lib)
	if err != nil {
		log.Fatal(err)
	}
	// Slot 0: packets by IP protocol (TCP = 6, UDP = 17). The outlier
	// check stays off (k = 0) — see the package comment for why it cannot
	// work over two classes.
	if _, err := rt.BindFreqProto(0, 0, stat4p4.AllIPv4(), 0, 64, 1, 1, 0); err != nil {
		log.Fatal(err)
	}
	// Slot 1: frame sizes in 64-byte buckets with a median marker — a
	// finer-grained view of "packets by type" whose median shifts when the
	// traffic mix changes.
	if _, err := rt.BindFreqLen(1, 1, stat4p4.AllIPv4(), 6, 0, 64, 1, 1, 0); err != nil {
		log.Fatal(err)
	}
	sw := rt.Switch()

	type snapshot struct {
		tcp, udp, median, sd, moves uint64
	}
	snap := func() snapshot {
		counters, _ := rt.ReadCounters(0, 32)
		sizes, _ := rt.ReadMoments(1)
		return snapshot{
			tcp: counters[6], udp: counters[17],
			median: sizes.Median, sd: sizes.SD, moves: sizes.MedianMoves,
		}
	}

	drive := func(st traffic.Stream) {
		for {
			p, ok := st.Next()
			if !ok {
				return
			}
			sw.ProcessPacket(p.TsNs, 1, p.Frame)
		}
	}

	// Phase 1: the mix the classifier was trained on — TCP web flows with
	// full-size data packets, a little UDP.
	dests := traffic.CaseStudyDests()
	drive(traffic.Merge(
		&traffic.WebMix{Dests: dests, Rate: 50000, End: 5e8, Seed: 1},
		&traffic.LoadBalanced{Dests: dests, Rate: 10000, End: 5e8, Seed: 2},
	))
	before := snap()
	fmt.Printf("trained mix : TCP=%-6d UDP=%-6d  size-median-bucket=%d (~%d bytes), size-sd=%d\n",
		before.tcp, before.udp, before.median, before.median*64, before.sd)

	// Phase 2: a UDP-heavy small-packet application rolls out.
	drive(&traffic.LoadBalanced{Dests: dests, Rate: 200000, Start: 5e8, End: 1e9, Seed: 3})
	after := snap()
	fmt.Printf("after shift : TCP=%-6d UDP=%-6d  size-median-bucket=%d (~%d bytes), size-sd=%d\n",
		after.tcp, after.udp, after.median, after.median*64, after.sd)

	// Controller-side drift rules: the median marker's position AND its
	// change rate (the paper's "values and change rates of percentiles"),
	// plus the protocol balance.
	medianMoved := after.median != before.median
	udpFlipped := after.udp > after.tcp != (before.udp > before.tcp)
	moveBurst := after.moves - before.moves
	fmt.Printf("\ndrift signals: size-median moved=%v (marker stepped %d times in phase 2), dominant protocol flipped=%v\n",
		medianMoved, moveBurst, udpFlipped)
	if medianMoved || udpFlipped {
		fmt.Println("=> traffic mix shifted: retrain or re-provision the in-switch classifier")
	} else {
		fmt.Println("=> mix stable")
	}
}
