package main

import (
	"strings"
	"testing"
)

// TestEntropyDDoSSmoke replays a scaled-down trace (same rate ratio, 1/10th
// the duration) and requires the entropy collapse to fire an in-switch alert
// after the flood begins.
func TestEntropyDDoSSmoke(t *testing.T) {
	cfg := defaultEntropyConfig()
	cfg.FloodStart = 1e8
	cfg.EndNs = 3e8
	var sb strings.Builder
	if err := run(&sb, cfg); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if strings.Contains(out, "something is wrong") {
		t.Fatalf("scaled-down flood went undetected:\n%s", out)
	}
	if !strings.Contains(out, "first in-switch alert") {
		t.Fatalf("no alert line in output:\n%s", out)
	}
}

// TestEntropyDDoSFull runs the example at its default scale.
func TestEntropyDDoSFull(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale example run skipped in -short mode")
	}
	var sb strings.Builder
	if err := run(&sb, defaultEntropyConfig()); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "something is wrong") {
		t.Fatalf("full run failed:\n%s", sb.String())
	}
}
