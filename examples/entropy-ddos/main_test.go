package main

import (
	"io"
	"strings"
	"testing"

	"stat4/internal/detect"
	"stat4/internal/traffic"
)

// score grades a run's alert stream with the internal/detect scorer against
// the flood window as ground truth.
func score(t *testing.T, cfg entropyConfig, stats runStats) detect.Temporal {
	t.Helper()
	truth := traffic.Truth{Attacks: []traffic.TimeWindow{{StartNs: cfg.FloodStart, EndNs: cfg.EndNs}}}
	return detect.ScoreTemporal(truth, cfg.EndNs, 0, 32, stats.Alerts)
}

// TestEntropyDDoSSmoke replays a scaled-down trace (same rate ratio, 1/10th
// the duration) and requires the entropy collapse to fire an in-switch alert
// after the flood begins.
func TestEntropyDDoSSmoke(t *testing.T) {
	cfg := defaultEntropyConfig()
	cfg.FloodStart = 1e8
	cfg.EndNs = 3e8
	var sb strings.Builder
	stats, err := run(&sb, cfg)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if strings.Contains(out, "something is wrong") {
		t.Fatalf("scaled-down flood went undetected:\n%s", out)
	}
	if !strings.Contains(out, "first in-switch alert") {
		t.Fatalf("no alert line in output:\n%s", out)
	}
	if ts := score(t, cfg, stats); ts.AttacksDetected != 1 {
		t.Fatalf("detect scoring saw no attack: %+v", ts)
	}
}

// TestEntropyDDoSDetectionLatency pins the example's full-scale quality: the
// run is deterministic (seeded generators, virtual clock), so the first
// collapse alert lands 235.4 ms after flood onset (+1 ms control link) —
// scored through internal/detect rather than read off the printed output. A
// refactor that silently changes the stream, the fixed-point entropy math or
// the check cadence moves this number and fails here.
func TestEntropyDDoSDetectionLatency(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale example run skipped in -short mode")
	}
	cfg := defaultEntropyConfig()
	stats, err := run(io.Discard, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := score(t, cfg, stats)
	if ts.AttacksDetected != 1 || ts.MeanTTDNs == nil {
		t.Fatalf("flood not detected: %+v", ts)
	}
	ttdMs := *ts.MeanTTDNs / 1e6
	if ttdMs < 200 || ttdMs > 270 {
		t.Fatalf("detection latency %.1f ms drifted outside the pinned [200, 270] ms band", ttdMs)
	}
	// The flood holds for the second half of the trace; once the collapse
	// crosses the threshold every later window stays flagged (recall only
	// loses the ~235 ms ramp) and nothing before onset may fire.
	if ts.Recall < 0.75 {
		t.Fatalf("recall %.3f below pinned 0.75 over the flood window", ts.Recall)
	}
	if ts.Precision < 0.95 {
		t.Fatalf("precision %.3f below pinned 0.95 (alerts before flood onset)", ts.Precision)
	}
	if stats.Bits >= 4 {
		t.Fatalf("final entropy %.3f bits did not collapse below the 4-bit threshold", stats.Bits)
	}
}
