// Entropy-collapse DDoS detection: the switch maintains the Shannon entropy
// of the destination-group distribution entirely in fixed-point integer
// arithmetic (f·log2fix(f) folded incrementally into a per-slot sum) and
// fires an alert digest when the mix collapses below a threshold — the
// classic signature of a volumetric flood concentrating traffic on one
// victim, caught without the controller polling a single counter.
package main

import (
	"fmt"
	"io"
	"os"

	"stat4/internal/detect"
	"stat4/internal/netem"
	"stat4/internal/p4"
	"stat4/internal/packet"
	"stat4/internal/stat4p4"
	"stat4/internal/traffic"
)

// entropyConfig sizes the scenario; main runs the full two-second trace, the
// smoke test a scaled-down one with the same rate ratio.
type entropyConfig struct {
	Groups     int     // destination groups in play (of the 256 tracked)
	WebRate    float64 // background packets per second
	FloodRate  float64
	FloodStart uint64
	EndNs      uint64
	CheckEvery uint64 // power of two; doubles as the warmup length
}

func defaultEntropyConfig() entropyConfig {
	return entropyConfig{
		Groups:     200,
		WebRate:    50000,
		FloodRate:  400000,
		FloodStart: 1e9,
		EndNs:      2e9,
		CheckEvery: 1024,
	}
}

// runStats is what a replay yields for quality scoring: the alert stream on
// controller arrival times (detect.Alert timestamps include the 1 ms control
// link) plus the final entropy snapshot.
type runStats struct {
	Alerts  []detect.Alert
	Packets uint64
	Bits    float64
}

func run(w io.Writer, cfg entropyConfig) (runStats, error) {
	var stats runStats
	lib := stat4p4.Build(stat4p4.Options{Slots: 1, Size: 256, Stages: 1, Entropy: true, DigestBuf: 4096})
	rt, err := stat4p4.NewRuntime(lib)
	if err != nil {
		return stats, err
	}
	frac := lib.Opts.EntropyFrac

	// Group = low byte of the destination; alert when the mix drops below
	// 4 bits (a healthy spread over cfg.Groups destinations sits near
	// log2(Groups) ≈ 7.6 bits), checking every CheckEvery-th packet.
	h0 := uint64(4) << frac
	dstBase := uint64(packet.ParseIP4(10, 0, 0, 0))
	if _, err := rt.BindEntropyDst(0, 0, stat4p4.AllIPv4(), 0, dstBase, 256, h0, cfg.CheckEvery); err != nil {
		return stats, err
	}

	sim := netem.NewSim()
	node := netem.NewSwitchNode(sim, rt.Switch(), 1e6 /* 1 ms to controller */)

	var alerts []p4.Digest
	node.OnDigest = func(now uint64, d p4.Digest) {
		if d.ID == stat4p4.DigestEntropy {
			alerts = append(alerts, d)
			stats.Alerts = append(stats.Alerts, detect.Alert{TsNs: now})
		}
	}

	// Balanced background over the group space, then a flood at one victim.
	dests := make([]packet.IP4, cfg.Groups)
	for i := range dests {
		dests[i] = packet.ParseIP4(10, 0, 0, byte(i))
	}
	victim := dests[77]
	web := &traffic.LoadBalanced{Dests: dests, Rate: cfg.WebRate, End: cfg.EndNs, Seed: 1}
	flood := &traffic.Spike{Dest: victim, Rate: cfg.FloodRate, Start: cfg.FloodStart, End: cfg.EndNs, Seed: 2}
	node.InjectStream(traffic.Merge(web, flood), 1)
	sim.Run()

	snap, err := rt.ReadEntropy(0)
	if err != nil {
		return stats, err
	}
	stats.Packets, stats.Bits = snap.Total, snap.Bits
	fmt.Fprintf(w, "final mix: %d packets, %.3f bits of destination entropy (threshold 4)\n",
		snap.Total, snap.Bits)
	if len(alerts) == 0 {
		fmt.Fprintln(w, "collapse not detected — something is wrong")
		return stats, nil
	}
	first := alerts[0]
	ts := first.Values[4]
	scaled := float64(first.Values[2]) / (float64(first.Values[1]) * float64(uint64(1)<<frac))
	fmt.Fprintf(w, "flood started at %.3fs; first in-switch alert at %.3fs (%.1fms after onset) reporting %.3f bits\n",
		float64(cfg.FloodStart)/1e9, float64(ts)/1e9, (float64(ts)-float64(cfg.FloodStart))/1e6, scaled)
	fmt.Fprintf(w, "%d entropy digests pushed to the controller in total\n", len(alerts))
	return stats, nil
}

func main() {
	if _, err := run(os.Stdout, defaultEntropyConfig()); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
