// Benchmarks regenerating each of the paper's tables and figures (see the
// per-experiment index in DESIGN.md), plus the ablation benches for the
// design choices Stat4 makes. Run with:
//
//	go test -bench=. -benchmem
package stat4

import (
	"bytes"
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"stat4/internal/core"
	"stat4/internal/experiments"
	"stat4/internal/ingest"
	"stat4/internal/intstat"
	"stat4/internal/netem"
	"stat4/internal/p4"
	"stat4/internal/packet"
	"stat4/internal/ring"
	"stat4/internal/stat4p4"
	"stat4/internal/traffic"
)

// --- E1: Table 2 — square root approximation -------------------------------

// BenchmarkTable2Sqrt measures the per-operand cost of the Figure 2
// approximate square root over the table's full input span.
func BenchmarkTable2Sqrt(b *testing.B) {
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += intstat.SqrtApprox(uint64(i%10000 + 1))
	}
	benchSink = sink
}

// BenchmarkTable2Regenerate times the full table harness.
func BenchmarkTable2Regenerate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table2()
		if len(rows) != 4 {
			b.Fatal("table shape")
		}
	}
}

// --- E2: Table 3 — online median -------------------------------------------

// BenchmarkTable3Median measures one median-tracked observation, the
// per-packet cost behind Table 3.
func BenchmarkTable3Median(b *testing.B) {
	d := core.NewFreqDist(1000)
	d.TrackMedian()
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.Observe(uint64(rng.Intn(1000))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3Regenerate times one repetition of the N=1000 row.
func BenchmarkTable3Regenerate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table3(1, int64(i))
		if len(rows) != 3 {
			b.Fatal("table shape")
		}
	}
}

// --- E3: Figure 5 — echo validation ----------------------------------------

// BenchmarkEchoValidation measures one echo frame through the full pipeline:
// parse, binding lookup, frequency update, variance, sqrt if-tree, median
// step, reply deparse.
func BenchmarkEchoValidation(b *testing.B) {
	lib := stat4p4.Build(stat4p4.Options{Slots: 1, Size: 512, Stages: 1, Echo: true})
	rt, err := stat4p4.NewRuntime(lib)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := rt.BindFreqEcho(0, 0, stat4p4.EchoOnly(), stat4p4.EchoBias-255, 512, 1, 1, 0); err != nil {
		b.Fatal(err)
	}
	sw := rt.Switch()
	rng := rand.New(rand.NewSource(2))
	frames := make([][]byte, 512)
	for i := range frames {
		frames[i] = packet.NewEchoFrame(packet.MAC{1}, packet.MAC{2}, int16(rng.Intn(511)-255)).Serialize()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := sw.ProcessFrame(uint64(i), 1, frames[i%len(frames)]); len(out) != 1 {
			b.Fatal("no reply")
		}
	}
}

// --- E4: Section 4 — case study --------------------------------------------

// BenchmarkCaseStudy runs one complete (small-configuration) detection and
// drill-down experiment per iteration.
func BenchmarkCaseStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.CaseStudy(experiments.CaseStudyParams{
			IntervalShift: 20, WindowSize: 20, PacketsPerInterval: 50,
			CtrlDelay: 20e6, Seed: int64(i) + 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Detected {
			b.Fatal("undetected")
		}
	}
}

// --- E5: Section 4 — resource consumption ----------------------------------

// BenchmarkResourceAnalysis measures the static analyzer over the emitted
// default program.
func BenchmarkResourceAnalysis(b *testing.B) {
	lib := stat4p4.Build(stat4p4.DefaultOptions)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := p4.AnalyzeProgram(lib.Prog)
		if r.TotalBytes == 0 {
			b.Fatal("empty report")
		}
	}
}

// --- E6: Figure 1 — architecture comparison --------------------------------

// BenchmarkArchComparison runs one sketch-only pull experiment (100 ms
// period, small window) per iteration.
func BenchmarkArchComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.ArchComparison(experiments.ArchParams{
			Runs: 1, Seed: int64(i) + 1, WindowSize: 20,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// --- data-plane throughput --------------------------------------------------

// BenchmarkSwitchFreqUpdate is the per-packet cost of a bound frequency
// distribution in the interpreted switch (no echo reply).
func BenchmarkSwitchFreqUpdate(b *testing.B) {
	lib := stat4p4.Build(stat4p4.Options{Slots: 1, Size: 256, Stages: 1})
	rt, err := stat4p4.NewRuntime(lib)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := rt.BindFreqDst(0, 0, stat4p4.AllIPv4(), 0, 0, 256, 1, 1, 0); err != nil {
		b.Fatal(err)
	}
	sw := rt.Switch()
	pkt, _ := packet.Parse(packet.NewUDPFrame(1, packet.IP4(200), 5, 80, 10).Serialize())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sw.ProcessPacket(uint64(i), 1, pkt)
	}
}

// BenchmarkSwitchWindowUpdate is the per-packet cost of a bound window
// distribution (folds amortised over ~100-packet intervals).
func BenchmarkSwitchWindowUpdate(b *testing.B) {
	lib := stat4p4.Build(stat4p4.Options{Slots: 1, Size: 256, Stages: 1})
	rt, err := stat4p4.NewRuntime(lib)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := rt.BindWindow(0, 0, stat4p4.AllIPv4(), 10, 100, 2); err != nil {
		b.Fatal(err)
	}
	sw := rt.Switch()
	pkt, _ := packet.Parse(packet.NewUDPFrame(1, packet.IP4(200), 5, 80, 10).Serialize())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sw.ProcessPacket(uint64(i*10), 1, pkt)
	}
	b.StopTimer()
	if sw.Stats().DigestDrops > 0 {
		b.Log("digest drops:", sw.Stats().DigestDrops)
	}
}

// BenchmarkCoreFreqObserve is the same update in the reference library — the
// interpreter's overhead is the gap to BenchmarkSwitchFreqUpdate.
func BenchmarkCoreFreqObserve(b *testing.B) {
	d := core.NewFreqDist(256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.Observe(uint64(i & 255)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCoreWindowTick is the reference window fold.
func BenchmarkCoreWindowTick(b *testing.B) {
	w := core.NewWindow(100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Add(1)
		if i%100 == 99 {
			w.CheckThenTick(2)
		}
	}
}

// --- ablations ---------------------------------------------------------------

// BenchmarkAblationSqrt compares the truncating Figure 2 square root, its
// rounding variant, and the exact Newton iteration the paper cannot use.
func BenchmarkAblationSqrt(b *testing.B) {
	fns := []struct {
		name string
		fn   func(uint64) uint64
	}{
		{"trunc", intstat.SqrtApprox},
		{"round", intstat.SqrtApproxRound},
		{"newton-exact", intstat.SqrtExact},
	}
	for _, f := range fns {
		b.Run(f.name, func(b *testing.B) {
			var sink uint64
			for i := 0; i < b.N; i++ {
				sink += f.fn(uint64(i)*2654435761 + 1)
			}
			benchSink = sink
		})
	}
}

// BenchmarkAblationMSB compares the three MSB layouts: the nested-if binary
// search the library emits, the linear threshold chain, and the plain loop a
// CPU would use.
func BenchmarkAblationMSB(b *testing.B) {
	fns := []struct {
		name string
		fn   func(uint64) int
	}{
		{"if-chain", intstat.MSBIfChain},
		{"linear", intstat.MSBLinear},
		{"loop", intstat.MSB},
	}
	for _, f := range fns {
		b.Run(f.name, func(b *testing.B) {
			var sink int
			for i := 0; i < b.N; i++ {
				sink += f.fn(uint64(i)*2654435761 + 1)
			}
			benchSinkInt = sink
		})
	}
}

// BenchmarkAblationLazySD compares lazy vs eager standard-deviation
// recomputation under a read-heavy pattern (one read per packet, one update
// per 100 packets — the traffic-rate monitoring shape).
func BenchmarkAblationLazySD(b *testing.B) {
	run := func(b *testing.B, eager bool) {
		var m core.Moments
		for i := 0; i < 100; i++ {
			m.AddSample(uint64(95 + i%10))
		}
		var sink uint64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if i%100 == 0 {
				m.AddSample(uint64(95 + i%10))
			}
			if eager {
				sink += m.StdDevEager()
			} else {
				sink += m.StdDev()
			}
		}
		benchSink = sink
	}
	b.Run("lazy", func(b *testing.B) { run(b, false) })
	b.Run("eager", func(b *testing.B) { run(b, true) })
}

// BenchmarkAblationEvict compares the window fold with the incremental
// squared shadow against recomputing the square at eviction time (legal only
// on multiply-capable targets).
func BenchmarkAblationEvict(b *testing.B) {
	b.Run("shadow-register", func(b *testing.B) {
		w := core.NewWindow(100)
		for i := 0; i < b.N; i++ {
			w.Add(1)
			if i%50 == 49 {
				w.Tick()
			}
		}
	})
	b.Run("recompute-square", func(b *testing.B) {
		// Hand-rolled fold that squares the evicted value instead of
		// keeping the shadow.
		cells := make([]uint64, 100)
		var cur, sum, sumsq uint64
		head, filled := 0, 0
		for i := 0; i < b.N; i++ {
			cur++
			if i%50 == 49 {
				if filled == len(cells) {
					old := cells[head]
					sum -= old
					sumsq -= old * old
				} else {
					filled++
				}
				cells[head] = cur
				sum += cur
				sumsq += cur * cur
				head = (head + 1) % len(cells)
				cur = 0
			}
		}
		benchSink = sum + sumsq
	})
}

// BenchmarkAblationPercentileStep compares the one-step-per-packet marker
// against a recirculation-like settle-to-balance on a sparse stream (the
// worst case for one-step accuracy, the worst case for settle cost).
func BenchmarkAblationPercentileStep(b *testing.B) {
	mk := func() (*core.FreqDist, *core.Percentile, *rand.Rand) {
		d := core.NewFreqDist(1000)
		return d, d.TrackMedian(), rand.New(rand.NewSource(3))
	}
	b.Run("one-step", func(b *testing.B) {
		d, _, rng := mk()
		for i := 0; i < b.N; i++ {
			// Zipf-ish sparse values: mostly small, occasionally huge.
			v := uint64(rng.Intn(10))
			if i%97 == 0 {
				v = uint64(900 + rng.Intn(100))
			}
			if err := d.Observe(v); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("settle", func(b *testing.B) {
		d, med, rng := mk()
		for i := 0; i < b.N; i++ {
			v := uint64(rng.Intn(10))
			if i%97 == 0 {
				v = uint64(900 + rng.Intn(100))
			}
			if err := d.Observe(v); err != nil {
				b.Fatal(err)
			}
			med.Settle(d, 1000)
		}
	})
}

// BenchmarkAblationStrictVsMul compares the behavioral-model emission
// (runtime multiply) with the strict shift-approximated emission on the same
// window workload.
func BenchmarkAblationStrictVsMul(b *testing.B) {
	run := func(b *testing.B, strict bool) {
		opts := stat4p4.Options{Slots: 1, Size: 256, Stages: 1}
		capacity := 100
		if strict {
			opts.Strict = true
			opts.StrictCapShift = 6
			capacity = 64
		}
		rt, err := stat4p4.NewRuntime(stat4p4.Build(opts))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := rt.BindWindow(0, 0, stat4p4.AllIPv4(), 10, capacity, 2); err != nil {
			b.Fatal(err)
		}
		sw := rt.Switch()
		pkt, _ := packet.Parse(packet.NewUDPFrame(1, packet.IP4(9), 5, 80, 10).Serialize())
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sw.ProcessPacket(uint64(i*10), 1, pkt)
		}
	}
	b.Run("bmv2-mul", func(b *testing.B) { run(b, false) })
	b.Run("strict-shift", func(b *testing.B) { run(b, true) })
}

var (
	benchSink    uint64
	benchSinkInt int
)

// --- Section 5 extensions ----------------------------------------------------

// BenchmarkSparseVsDense quantifies the memory extension: per-observation
// cost of sparse hash-bucket tracking vs a dense counter array, at matched
// active-key counts.
func BenchmarkSparseVsDense(b *testing.B) {
	keys := make([]uint64, 1000)
	rng := rand.New(rand.NewSource(5))
	for i := range keys {
		keys[i] = uint64(rng.Uint32())
	}
	b.Run("sparse-4k-buckets", func(b *testing.B) {
		d := core.NewSparseFreqDist(4096, 2)
		for i := 0; i < b.N; i++ {
			_ = d.Observe(keys[i%len(keys)])
		}
		b.ReportMetric(float64(d.MemoryCells()), "cells")
	})
	b.Run("dense-2^32-domain", func(b *testing.B) {
		// A dense array over the full key domain is unbuildable; use the
		// keys' low bits as a stand-in domain to time the update path and
		// report the cells a real dense array would need.
		d := core.NewFreqDist(1 << 16)
		for i := 0; i < b.N; i++ {
			_ = d.Observe(keys[i%len(keys)] & 0xffff)
		}
		b.ReportMetric(float64(uint64(1)<<32), "cells")
	})
}

// BenchmarkSwitchSparseUpdate is the per-packet cost of the emitted sparse
// path (hash probe + shared accumulation).
func BenchmarkSwitchSparseUpdate(b *testing.B) {
	lib := stat4p4.Build(stat4p4.Options{Slots: 1, Size: 256, Stages: 1, Sparse: true})
	rt, err := stat4p4.NewRuntime(lib)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := rt.BindSparseDst(0, 0, stat4p4.AllIPv4(), 0, 0); err != nil {
		b.Fatal(err)
	}
	sw := rt.Switch()
	pkt, _ := packet.Parse(packet.NewUDPFrame(1, packet.ParseIP4(203, 0, 113, 9), 5, 80, 10).Serialize())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sw.ProcessPacket(uint64(i), 1, pkt)
	}
}

// --- entropy and heavy hitters ------------------------------------------------

// BenchmarkLog2Fixed measures the fixed-point log2 (MSB if-tree plus
// fractional refinement) that every entropy-tracked packet pays twice.
func BenchmarkLog2Fixed(b *testing.B) {
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += intstat.Log2Fixed(uint64(i)*2654435761+1, 16)
	}
	benchSink = sink
}

// BenchmarkSwitchEntropyUpdate is the per-packet cost of a bound entropy
// slot: counter bump, two log2 if-trees, cell/sum maintenance, and the gated
// collapse check every 1024 observations.
func BenchmarkSwitchEntropyUpdate(b *testing.B) {
	lib := stat4p4.Build(stat4p4.Options{Slots: 1, Size: 256, Stages: 1, Entropy: true})
	rt, err := stat4p4.NewRuntime(lib)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := rt.BindEntropyDst(0, 0, stat4p4.AllIPv4(), 0, 0, 256, 0, 1024); err != nil {
		b.Fatal(err)
	}
	sw := rt.Switch()
	pkts := make([]*packet.Packet, 64)
	for i := range pkts {
		pkts[i], _ = packet.Parse(packet.NewUDPFrame(1, packet.IP4(uint32(i*5%256)), 5, 80, 10).Serialize())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sw.ProcessPacket(uint64(i), 1, pkts[i&63])
	}
}

// BenchmarkSwitchHeavyHitterUpdate is the per-packet cost of the
// heavy-hitter path at two sampling budgets: shift=6 is the typical 2^-6
// coin (recirculation amortised away), shift=0 recirculates every packet —
// the structural worst case the stage budget must absorb.
func BenchmarkSwitchHeavyHitterUpdate(b *testing.B) {
	for _, shift := range []uint{6, 0} {
		b.Run(fmt.Sprintf("shift=%d", shift), func(b *testing.B) {
			lib := stat4p4.Build(stat4p4.Options{Slots: 1, Size: 64, Stages: 1, HeavyHitter: true})
			rt, err := stat4p4.NewRuntime(lib)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := rt.BindHeavyHitterSrc(0, 0, stat4p4.AllIPv4(), 0, shift); err != nil {
				b.Fatal(err)
			}
			sw := rt.Switch()
			pkts := make([]*packet.Packet, 64)
			for i := range pkts {
				src := packet.ParseIP4(198, 18, byte(i/16), byte(i*7))
				pkts[i], _ = packet.Parse(packet.NewUDPFrame(src, packet.IP4(9), 5, 80, 10).Serialize())
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sw.ProcessPacket(uint64(i), 1, pkts[i&63])
			}
			b.StopTimer()
			if shift == 0 && sw.Stats().Recirculated == 0 {
				b.Fatal("shift=0 never recirculated")
			}
		})
	}
}

// --- sharded datapath ---------------------------------------------------------

// shardedBenchBatch builds a fixed batch of UDP frames spread over many
// 5-tuples, so the flow-hash dispatcher has real spreading work.
func shardedBenchBatch(n int) []p4.FrameIn {
	rng := rand.New(rand.NewSource(11))
	batch := make([]p4.FrameIn, n)
	for i := range batch {
		src := packet.ParseIP4(192, 168, byte(rng.Intn(8)), byte(rng.Intn(250)))
		dst := packet.ParseIP4(10, 0, 0, byte(rng.Intn(200)))
		frame := packet.NewUDPFrame(src, dst, uint16(1024+rng.Intn(4096)), 80, 10).Serialize()
		batch[i] = p4.FrameIn{TsNs: uint64(i), Port: 1, Data: frame}
	}
	return batch
}

func newShardedBench(b *testing.B, shards int) *stat4p4.ShardedRuntime {
	b.Helper()
	lib := stat4p4.Build(stat4p4.Options{Slots: 1, Size: 256, Stages: 1})
	sr, err := stat4p4.NewShardedRuntime(lib, shards)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(sr.Close)
	if _, err := sr.BindFreqDst(0, 0, stat4p4.AllIPv4(), 0, 0, 256, 1, 1, 0); err != nil {
		b.Fatal(err)
	}
	return sr
}

// BenchmarkShardedProcessBatch measures the dispatcher's concurrent fan-out:
// partition by flow hash, run every shard's partition on its worker, reduce
// outputs in shard order. On a single-core host the shards time-slice, so
// this bench shows the dispatch overhead rather than a speedup — see
// BenchmarkShardedCriticalPath for the multi-pipeline wall-clock model.
func BenchmarkShardedProcessBatch(b *testing.B) {
	batch := shardedBenchBatch(4096)
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			sr := newShardedBench(b, shards)
			ss := sr.Sharded()
			ss.ProcessBatch(batch, nil) // take lazily-grown buffers to steady state
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ss.ProcessBatch(batch, nil)
			}
			b.ReportMetric(float64(len(batch)), "pkts/op")
		})
	}
}

// BenchmarkShardedCriticalPath times only the busiest shard's partition run
// serially — the wall clock of one batch on a chassis where every shard is
// its own pipeline, which is what sharding buys on real multi-core/multi-pipe
// hardware. With a balanced flow hash the busiest partition is ≈ batch/N, so
// ns/op shrinks near-linearly in the shard count.
func BenchmarkShardedCriticalPath(b *testing.B) {
	batch := shardedBenchBatch(4096)
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			sr := newShardedBench(b, shards)
			ss := sr.Sharded()
			parts := make([][]p4.FrameIn, shards)
			for _, fr := range batch {
				s := ss.ShardOf(fr.Data)
				parts[s] = append(parts[s], fr)
			}
			critical := parts[0]
			for _, p := range parts[1:] {
				if len(p) > len(critical) {
					critical = p
				}
			}
			sw := ss.Shard(0)
			sw.ProcessBatch(critical, nil)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sw.ProcessBatch(critical, nil)
			}
			b.ReportMetric(float64(len(critical)), "critical-pkts/op")
		})
	}
}

// BenchmarkShardScale runs one shard-sweep row (4 shards, short workload)
// per iteration: replay, merge, canonical-equivalence check.
func BenchmarkShardScale(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.ShardScale(experiments.ShardScaleParams{
			DurationNs: 2e5, ShardCounts: []int{4}, Seed: int64(i) + 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		if !rows[0].Equivalent {
			b.Fatal("merged snapshot diverged from serial")
		}
	}
}

// --- The simulation engine --------------------------------------------------

// schedBenchModes pairs each scheduler engine with its bench label; "heap" is
// the reference baseline the wheel deltas in BENCH_3.json are measured
// against.
var schedBenchModes = []struct {
	name string
	mode netem.SchedMode
}{
	{"wheel", netem.SchedWheel},
	{"heap", netem.SchedHeap},
}

// simBenchOffsets spreads consecutive timestamps across wheel levels (L0
// neighbours, same-bucket ties, L1/L2 jumps) so the schedule path is not
// measured on a single lucky slot pattern.
var simBenchOffsets = [8]uint64{1, 17, 300, 5_000, 9, 131_072, 40, 70_000}

// BenchmarkSimSchedule measures scheduling one packet-arrival event into an
// idle-but-warm simulator — the engine's insert cost, with dispatch drained
// off the clock. Under the wheel this is a slab write plus a bucket append
// (0 allocs); under the heap it is a closure, an interface box and a sift.
func BenchmarkSimSchedule(b *testing.B) {
	for _, m := range schedBenchModes {
		b.Run("sched="+m.name, func(b *testing.B) {
			rt, err := stat4p4.NewRuntime(stat4p4.Build(stat4p4.Options{Slots: 1, Size: 64, Stages: 1}))
			if err != nil {
				b.Fatal(err)
			}
			if _, err := rt.BindWindow(0, 0, stat4p4.AllIPv4(), 10, 8, 2); err != nil {
				b.Fatal(err)
			}
			sim := netem.NewSimSched(m.mode)
			node := netem.NewSwitchNode(sim, rt.Switch(), 500)
			node.OnDigest = func(uint64, p4.Digest) {}
			node.Connect(0, 100, func(uint64, []byte) {})
			pkt, _ := packet.Parse(packet.NewUDPFrame(1, packet.IP4(200), 5, 80, 10).Serialize())
			ts := sim.Now()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if i&4095 == 4095 {
					b.StopTimer()
					sim.Run() // drain off the clock: this bench times inserts
					ts = sim.Now()
					b.StartTimer()
				}
				ts += simBenchOffsets[i&7]
				node.Inject(ts, 1, traffic.Pkt{TsNs: ts, Frame: pkt})
			}
			b.StopTimer()
			sim.Run()
		})
	}
}

// BenchmarkSimDispatch measures popping and running one due generic event
// from a 4096-deep backlog — the engine's extract-min cost (scheduling
// happens off the clock).
func BenchmarkSimDispatch(b *testing.B) {
	for _, m := range schedBenchModes {
		b.Run("sched="+m.name, func(b *testing.B) {
			sim := netem.NewSimSched(m.mode)
			fn := func() {}
			const batch = 4096
			done := 0
			b.ResetTimer()
			for done < b.N {
				b.StopTimer()
				t := sim.Now()
				for j := 0; j < batch; j++ {
					t += simBenchOffsets[j&7]
					sim.At(t, fn)
				}
				b.StartTimer()
				sim.Run()
				done += batch
			}
		})
	}
}

// offsetStream shifts a stream's timestamps by a fixed base, so a fresh
// trace can be replayed later in an already-running simulation; it also
// counts the packets it hands out.
type offsetStream struct {
	base uint64
	st   traffic.Stream
	n    int
}

func (o *offsetStream) Next() (traffic.Pkt, bool) {
	p, ok := o.st.Next()
	if !ok {
		return p, false
	}
	p.TsNs += o.base
	o.n++
	return p, true
}

// BenchmarkInjectStreamE2E replays one ~200k-packet trace through a switch
// node per iteration — stream pump, packet processing, frame deliveries over
// a 200 µs link (≈100k deliveries in flight at steady state), digest
// forwarding. The switch monitors one target /16 while the bulk of the
// traffic is background load that misses the stats table, so the event
// engine — not the window update — dominates, which is what this benchmark
// isolates (BenchmarkSwitch* price the datapath itself). The wheel-vs-heap
// ratio here is the PR's headline number; shards>1 runs the same trace
// through a sharded chassis node.
func BenchmarkInjectStreamE2E(b *testing.B) {
	type streamNode interface {
		InjectStream(st traffic.Stream, port uint16)
	}
	lib := stat4p4.Build(stat4p4.Options{Slots: 1, Size: 64, Stages: 1})
	monitored := packet.NewPrefix(packet.ParseIP4(10, 9, 0, 0), 16)
	dests := []packet.IP4{packet.ParseIP4(10, 9, 0, 1)}
	for i := uint32(1); i < 16; i++ {
		dests = append(dests, packet.ParseIP4(10, 0, 0, 0)|packet.IP4(i))
	}
	mkStream := func(base uint64) *offsetStream {
		return &offsetStream{base: base, st: &traffic.LoadBalanced{
			Dests: dests, Rate: 5e8, End: 409_600, Seed: 7, Jitter: 0.2,
		}}
	}
	for _, m := range schedBenchModes {
		for _, shards := range []int{1, 4, 8} {
			b.Run(fmt.Sprintf("sched=%s/shards=%d", m.name, shards), func(b *testing.B) {
				sim := netem.NewSimSched(m.mode)
				var node streamNode
				if shards > 1 {
					sr, err := stat4p4.NewShardedRuntime(lib, shards)
					if err != nil {
						b.Fatal(err)
					}
					defer sr.Close()
					if _, err := sr.BindWindow(0, 0, stat4p4.DstIn(monitored), 10, 8, 2); err != nil {
						b.Fatal(err)
					}
					n := netem.NewShardedSwitchNode(sim, sr.Sharded(), 500)
					n.OnDigest = func(uint64, p4.Digest) {}
					n.Connect(0, 200_000, func(uint64, []byte) {})
					node = n
				} else {
					rt, err := stat4p4.NewRuntime(lib)
					if err != nil {
						b.Fatal(err)
					}
					if _, err := rt.BindWindow(0, 0, stat4p4.DstIn(monitored), 10, 8, 2); err != nil {
						b.Fatal(err)
					}
					n := netem.NewSwitchNode(sim, rt.Switch(), 500)
					n.OnDigest = func(uint64, p4.Digest) {}
					n.Connect(0, 200_000, func(uint64, []byte) {})
					node = n
				}
				// One untimed replay takes the frame pool, event slab and heap
				// backing array to steady state.
				warm := mkStream(sim.Now())
				node.InjectStream(warm, 1)
				sim.Run()
				pkts := 0
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					st := mkStream(sim.Now())
					node.InjectStream(st, 1)
					sim.Run()
					pkts += st.n
				}
				b.ReportMetric(float64(pkts)/float64(b.N), "pkts/op")
			})
		}
	}
}

// --- the ingest plane (internal/ring, internal/ingest, stat4d) ---------------

// BenchmarkRingPush measures the raw descriptor handoff: one TryPush plus one
// TryPop per op, ping-pong on the same goroutine so the numbers isolate the
// ring algebra (no scheduler noise). The MPSC variant pays two extra atomics
// for multi-producer safety.
func BenchmarkRingPush(b *testing.B) {
	b.Run("spsc", func(b *testing.B) {
		r := ring.NewSPSC(256)
		var d ring.Desc
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r.TryPush(ring.Desc{Block: uint32(i), N: 1, Seq: uint64(i)})
			r.TryPop(&d)
		}
	})
	b.Run("mpsc", func(b *testing.B) {
		r := ring.NewMPSC(256)
		var d ring.Desc
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r.TryPush(ring.Desc{Block: uint32(i), N: 1, Seq: uint64(i)})
			r.TryPop(&d)
		}
	})
}

// ingestBenchEngine wires an engine over a k=0 dst24 binding (digest-free, so
// the steady state stays allocation-free).
func ingestBenchEngine(b *testing.B, shards int, cfg ingest.Config) *ingest.Engine {
	b.Helper()
	sr := newShardedBench(b, shards)
	e := ingest.New(sr, cfg)
	b.Cleanup(e.Stop)
	return e
}

// BenchmarkIngestHandoff drives the full producer → MPSC ring → consumer →
// sharded datapath path with the stat4d machinery: frames are copied into
// slab blocks, descriptors cross the ring, and the consumer feeds the shard
// rings. Lossless (AddWait), so every op processes exactly the batch.
func BenchmarkIngestHandoff(b *testing.B) {
	batch := shardedBenchBatch(4096)
	for _, shards := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			e := ingestBenchEngine(b, shards, ingest.Config{BatchFrames: 256})
			p := e.NewProducer()
			defer p.Close()
			push := func() {
				for _, fr := range batch {
					p.AddWait(fr.TsNs, fr.Port, fr.Data)
				}
				p.FlushWait()
			}
			done := uint64(0)
			push()
			done += uint64(len(batch))
			for e.Frames() < done {
				runtime.Gosched()
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				push()
				done += uint64(len(batch))
				for e.Frames() < done {
					runtime.Gosched()
				}
			}
			b.ReportMetric(float64(len(batch)), "pkts/op")
		})
	}
}

// BenchmarkStat4dE2E adds the wire protocol on top: each op encodes the batch
// as length-prefixed records, streams it through ServeConn over an in-memory
// pipe, and waits for the datapath to absorb it — the full daemon path minus
// the kernel socket.
func BenchmarkStat4dE2E(b *testing.B) {
	batch := shardedBenchBatch(4096)
	var wire bytes.Buffer
	for _, fr := range batch {
		if err := ingest.WriteRecord(&wire, fr.TsNs, fr.Port, fr.Data); err != nil {
			b.Fatal(err)
		}
	}
	blob := wire.Bytes()
	for _, shards := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			e := ingestBenchEngine(b, shards, ingest.Config{BatchFrames: 256})
			done := uint64(0)
			op := func() {
				if _, err := e.ServeConn(bytes.NewReader(blob)); err != nil {
					b.Fatal(err)
				}
				done += uint64(len(batch))
				// ServeConn uses the shedding Add; account shed frames so a
				// saturated run still terminates.
				for {
					_, shed := e.Shed()
					if e.Frames()+shed >= done {
						break
					}
					runtime.Gosched()
				}
			}
			op()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				op()
			}
			b.ReportMetric(float64(len(batch)), "pkts/op")
		})
	}
}
