// Allocation regression tests for the data plane: after the compile step and
// scratch-reuse work, one packet through the switch must not allocate. These
// pin the property so a future change that re-introduces a per-packet
// allocation fails loudly rather than showing up as a benchmark regression.
//
// Every test runs with a telemetry observer attached: the observability layer
// rides the per-packet path (cost histogram, digest emit stamps), so the
// zero-alloc guarantee is pinned with recording enabled, not just without.
package stat4

import (
	"testing"

	"stat4/internal/netem"
	"stat4/internal/p4"
	"stat4/internal/packet"
	"stat4/internal/stat4p4"
	"stat4/internal/telemetry"
	"stat4/internal/traffic"
)

// warmupPackets runs enough traffic to take every lazily-grown buffer (deparse
// buffer, digest channel headroom) to steady state before measuring.
const warmupPackets = 4096

// attachTelemetry installs a fresh SwitchMetrics observer so the measured
// path includes the telemetry recorders.
func attachTelemetry(sw *p4.Switch) *telemetry.SwitchMetrics {
	obs := telemetry.NewSwitchMetrics(0)
	sw.SetObserver(obs)
	return obs
}

func assertZeroAllocs(t *testing.T, name string, f func()) {
	t.Helper()
	if avg := testing.AllocsPerRun(200, f); avg != 0 {
		t.Errorf("%s: %.2f allocs/packet, want 0", name, avg)
	}
}

func TestProcessPacketZeroAllocFreq(t *testing.T) {
	rt, err := stat4p4.NewRuntime(stat4p4.Build(stat4p4.Options{Slots: 1, Size: 256, Stages: 1}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.BindFreqDst(0, 0, stat4p4.AllIPv4(), 0, 0, 256, 1, 1, 0); err != nil {
		t.Fatal(err)
	}
	sw := rt.Switch()
	obs := attachTelemetry(sw)
	pkt, _ := packet.Parse(packet.NewUDPFrame(1, packet.IP4(200), 5, 80, 10).Serialize())
	ts := uint64(0)
	for i := 0; i < warmupPackets; i++ {
		ts++
		sw.ProcessPacket(ts, 1, pkt)
	}
	assertZeroAllocs(t, "freq", func() {
		ts++
		sw.ProcessPacket(ts, 1, pkt)
	})
	if obs.Cost.Count() == 0 {
		t.Fatal("telemetry observer recorded nothing")
	}
}

func TestProcessPacketZeroAllocWindow(t *testing.T) {
	rt, err := stat4p4.NewRuntime(stat4p4.Build(stat4p4.Options{Slots: 1, Size: 256, Stages: 1}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.BindWindow(0, 0, stat4p4.AllIPv4(), 10, 100, 2); err != nil {
		t.Fatal(err)
	}
	sw := rt.Switch()
	obs := attachTelemetry(sw)
	pkt, _ := packet.Parse(packet.NewUDPFrame(1, packet.IP4(200), 5, 80, 10).Serialize())
	// Perfectly steady traffic: interval folds happen, anomaly digests don't.
	ts := uint64(0)
	for i := 0; i < warmupPackets; i++ {
		ts += 10
		sw.ProcessPacket(ts, 1, pkt)
	}
	assertZeroAllocs(t, "window", func() {
		ts += 10
		sw.ProcessPacket(ts, 1, pkt)
	})
	if obs.Cost.Count() == 0 {
		t.Fatal("telemetry observer recorded nothing")
	}
}

func TestProcessPacketZeroAllocSparse(t *testing.T) {
	rt, err := stat4p4.NewRuntime(stat4p4.Build(stat4p4.Options{Slots: 1, Size: 256, Stages: 1, Sparse: true}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.BindSparseDst(0, 0, stat4p4.AllIPv4(), 0, 0); err != nil {
		t.Fatal(err)
	}
	sw := rt.Switch()
	obs := attachTelemetry(sw)
	pkt, _ := packet.Parse(packet.NewUDPFrame(1, packet.ParseIP4(203, 0, 113, 9), 5, 80, 10).Serialize())
	ts := uint64(0)
	for i := 0; i < warmupPackets; i++ {
		ts++
		sw.ProcessPacket(ts, 1, pkt)
	}
	assertZeroAllocs(t, "sparse", func() {
		ts++
		sw.ProcessPacket(ts, 1, pkt)
	})
	if obs.Cost.Count() == 0 {
		t.Fatal("telemetry observer recorded nothing")
	}
}

// TestProcessFrameZeroAllocEcho covers the full frame path — parse into the
// packet scratch, frequency update, median step, reply deparse into the
// reused buffer — for the echo validation app.
func TestProcessFrameZeroAllocEcho(t *testing.T) {
	rt, err := stat4p4.NewRuntime(stat4p4.Build(stat4p4.Options{Slots: 1, Size: 512, Stages: 1, Echo: true}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.BindFreqEcho(0, 0, stat4p4.EchoOnly(), stat4p4.EchoBias-255, 512, 1, 1, 0); err != nil {
		t.Fatal(err)
	}
	sw := rt.Switch()
	obs := attachTelemetry(sw)
	frame := packet.NewEchoFrame(packet.MAC{1}, packet.MAC{2}, 42).Serialize()
	ts := uint64(0)
	for i := 0; i < warmupPackets; i++ {
		ts++
		if out := sw.ProcessFrame(ts, 1, frame); len(out) != 1 {
			t.Fatal("no echo reply")
		}
	}
	assertZeroAllocs(t, "echo", func() {
		ts++
		sw.ProcessFrame(ts, 1, frame)
	})
	if obs.Cost.Count() == 0 {
		t.Fatal("telemetry observer recorded nothing")
	}
}

// TestProcessBatchZeroAlloc pins the batch entry point: the loop and emit
// callback must add nothing on top of the per-frame path.
func TestProcessBatchZeroAlloc(t *testing.T) {
	rt, err := stat4p4.NewRuntime(stat4p4.Build(stat4p4.Options{Slots: 1, Size: 256, Stages: 1}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.BindFreqDst(0, 0, stat4p4.AllIPv4(), 0, 0, 256, 1, 1, 0); err != nil {
		t.Fatal(err)
	}
	sw := rt.Switch()
	obs := attachTelemetry(sw)
	frame := packet.NewUDPFrame(1, packet.IP4(200), 5, 80, 10).Serialize()
	batch := make([]p4.FrameIn, 64)
	ts := uint64(0)
	for i := range batch {
		ts++
		batch[i] = p4.FrameIn{TsNs: ts, Port: 1, Data: frame}
	}
	var seen int
	emit := func(p4.FrameOut) { seen++ }
	sw.ProcessBatch(batch, emit)
	assertZeroAllocs(t, "batch", func() {
		sw.ProcessBatch(batch, emit)
	})
	if seen == 0 {
		t.Fatal("emit never called")
	}
	if obs.Cost.Count() == 0 {
		t.Fatal("telemetry observer recorded nothing")
	}
}

// TestNetemInjectZeroAllocEcho pins the simulated end-to-end path under the
// wheel engine: scheduling the packet-arrival event, dispatching it through
// the switch, and delivering the reply frame over a pooled link buffer must
// add zero allocations on top of the (already zero-alloc) datapath. This is
// the simulator-side guarantee the timer-wheel rework exists for — under the
// reference heap scheduler the same cycle allocates a closure and a frame
// copy per event.
func TestNetemInjectZeroAllocEcho(t *testing.T) {
	rt, err := stat4p4.NewRuntime(stat4p4.Build(stat4p4.Options{Slots: 1, Size: 512, Stages: 1, Echo: true}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.BindFreqEcho(0, 0, stat4p4.EchoOnly(), stat4p4.EchoBias-255, 512, 1, 1, 0); err != nil {
		t.Fatal(err)
	}
	sw := rt.Switch()
	obs := attachTelemetry(sw)
	sim := netem.NewSimSched(netem.SchedWheel)
	node := netem.NewSwitchNode(sim, sw, 500)
	node.OnDigest = func(now uint64, d p4.Digest) {}
	var delivered int
	// Echo replies egress on the ingress port.
	node.Connect(1, 100, func(now uint64, data []byte) { delivered++ })

	pkt, _ := packet.Parse(packet.NewEchoFrame(packet.MAC{1}, packet.MAC{2}, 42).Serialize())
	ts := uint64(0)
	step := func() {
		ts += 200
		node.Inject(ts, 1, traffic.Pkt{TsNs: ts, Frame: pkt})
		sim.RunUntil(ts + 150)
	}
	for i := 0; i < warmupPackets; i++ {
		step()
	}
	assertZeroAllocs(t, "netem-echo", func() {
		step()
	})
	if delivered == 0 {
		t.Fatal("no echo replies delivered over the link")
	}
	if obs.Cost.Count() == 0 {
		t.Fatal("telemetry observer recorded nothing")
	}
}

// TestShardedProcessBatchZeroAlloc pins the sharded hot path: once the
// per-shard partition, output and digest buffers reach steady state, a batch
// through the dispatcher — partition, concurrent shard runs, ordered
// reduction — must not allocate, per shard or in the fan-out itself.
func TestShardedProcessBatchZeroAlloc(t *testing.T) {
	lib := stat4p4.Build(stat4p4.Options{Slots: 1, Size: 256, Stages: 1})
	sr, err := stat4p4.NewShardedRuntime(lib, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer sr.Close()
	if _, err := sr.BindFreqDst(0, 0, stat4p4.AllIPv4(), 0, 0, 256, 1, 1, 0); err != nil {
		t.Fatal(err)
	}
	ss := sr.Sharded()
	obs := make([]*telemetry.SwitchMetrics, ss.NumShards())
	for i := range obs {
		obs[i] = attachTelemetry(ss.Shard(i))
	}
	batch := make([]p4.FrameIn, 64)
	for i := range batch {
		// Spread flows so every shard owns a partition.
		frame := packet.NewUDPFrame(packet.IP4(uint32(i)), packet.IP4(200+uint32(i%8)), uint16(5+i), 80, 10).Serialize()
		batch[i] = p4.FrameIn{TsNs: uint64(i), Port: 1, Data: frame}
	}
	var seen int
	emit := func(p4.FrameOut) { seen++ }
	for i := 0; i < warmupPackets/len(batch); i++ {
		ss.ProcessBatch(batch, emit)
	}
	assertZeroAllocs(t, "sharded-batch", func() {
		ss.ProcessBatch(batch, emit)
	})
	if seen == 0 {
		t.Fatal("emit never called")
	}
	var shardsHit int
	for _, o := range obs {
		if o.Cost.Count() > 0 {
			shardsHit++
		}
	}
	if shardsHit < 2 {
		t.Fatalf("traffic reached %d shards, want at least 2", shardsHit)
	}
}
